// Cycle statistics collected by the circuit simulator.
//
// Both execution engines (the reference loop and FastCircuit) fill the
// same counters with cycle-identical values — tests/sim_fastpath_test.cc
// asserts field-by-field equality. After a run the counters are published
// to the obs metrics registry under the `sim.*` / `qpi.*` names catalogued
// in docs/observability.md.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fpart {

/// \brief Counters accumulated over one simulated partitioning run.
struct CycleStats {
  /// Total clock cycles simulated (both passes in HIST mode).
  uint64_t cycles = 0;
  /// Cycles in which the circuit accepted an input cache line.
  uint64_t input_lines = 0;
  /// Cache lines written back over QPI.
  uint64_t output_lines = 0;
  /// Cache lines read over QPI (relation scans, both passes).
  uint64_t read_lines = 0;
  /// Cycles in which the QPI link had no token for a pending request
  /// (bandwidth back-pressure, Section 4.3). Always equals
  /// read_stall_cycles + write_stall_cycles.
  uint64_t backpressure_cycles = 0;
  /// Back-pressure split by direction: cycles a pending *read* found no
  /// token (input starvation — the Figure 2 bandwidth bound as seen by
  /// the feed stage) and cycles a pending *write-back* line found none.
  uint64_t read_stall_cycles = 0;
  uint64_t write_stall_cycles = 0;
  /// Cycles in which an internal pipeline stage stalled. The paper's core
  /// claim is a fully pipelined circuit: this must stay 0.
  uint64_t internal_stall_cycles = 0;
  /// Dummy (padding) tuples emitted by the flush (Section 4.2).
  uint64_t dummy_tuples = 0;
  /// Phase split of `cycles`: the HIST pass-1 scan plus its prefix-sum
  /// scan (0 in PAD mode), and the flush+drain epilogue of the writing
  /// pass. The streaming share is cycles - histogram_cycles - flush_cycles.
  uint64_t histogram_cycles = 0;
  uint64_t flush_cycles = 0;

  /// Simulated wall time given the FPGA clock.
  double Seconds(double clock_hz) const {
    return static_cast<double>(cycles) / clock_hz;
  }

  void Merge(const CycleStats& other) {
    cycles += other.cycles;
    input_lines += other.input_lines;
    output_lines += other.output_lines;
    read_lines += other.read_lines;
    backpressure_cycles += other.backpressure_cycles;
    read_stall_cycles += other.read_stall_cycles;
    write_stall_cycles += other.write_stall_cycles;
    internal_stall_cycles += other.internal_stall_cycles;
    dummy_tuples += other.dummy_tuples;
    histogram_cycles += other.histogram_cycles;
    flush_cycles += other.flush_cycles;
  }
};

}  // namespace fpart
