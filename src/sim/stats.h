// Cycle statistics collected by the circuit simulator.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fpart {

/// \brief Counters accumulated over one simulated partitioning run.
struct CycleStats {
  /// Total clock cycles simulated (both passes in HIST mode).
  uint64_t cycles = 0;
  /// Cycles in which the circuit accepted an input cache line.
  uint64_t input_lines = 0;
  /// Cache lines written back over QPI.
  uint64_t output_lines = 0;
  /// Cache lines read over QPI (relation scans, both passes).
  uint64_t read_lines = 0;
  /// Cycles in which the QPI link had no token for a pending request
  /// (bandwidth back-pressure, Section 4.3).
  uint64_t backpressure_cycles = 0;
  /// Cycles in which an internal pipeline stage stalled. The paper's core
  /// claim is a fully pipelined circuit: this must stay 0.
  uint64_t internal_stall_cycles = 0;
  /// Dummy (padding) tuples emitted by the flush (Section 4.2).
  uint64_t dummy_tuples = 0;

  /// Simulated wall time given the FPGA clock.
  double Seconds(double clock_hz) const {
    return static_cast<double>(cycles) / clock_hz;
  }

  void Merge(const CycleStats& other) {
    cycles += other.cycles;
    input_lines += other.input_lines;
    output_lines += other.output_lines;
    read_lines += other.read_lines;
    backpressure_cycles += other.backpressure_cycles;
    internal_stall_cycles += other.internal_stall_cycles;
    dummy_tuples += other.dummy_tuples;
  }
};

}  // namespace fpart
