#include "common/env.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>

namespace fpart {

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || parsed <= 0.0) return def;
  return parsed;
}

size_t EnvSizeT(const char* name, size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return def;
  return static_cast<size_t>(parsed);
}

double BenchScale() {
  double s = EnvDouble("FPART_SCALE", 1.0);
  return std::clamp(s, 1.0 / 64.0, 64.0);
}

size_t BenchMaxThreads() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  // The paper's CPU is a 10-core Xeon E5-2680 v2; its thread sweeps stop
  // at 10 threads, so we default to the same cap.
  size_t def = std::min<size_t>(hw, 10);
  size_t v = EnvSizeT("FPART_THREADS", def);
  return std::max<size_t>(1, std::min(v, hw));
}

}  // namespace fpart
