// Cache-line aligned, owning byte buffers. The FPGA circuit and the
// software write-combining partitioner both operate on 64 B cache lines,
// so all relation storage is allocated at that alignment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/macros.h"
#include "common/status.h"

namespace fpart {

/// Where a buffer's pages should land on a multi-node host. All modes are
/// no-ops on single-node machines and on platforms without mbind.
enum class NumaPlacement {
  kDefault,     ///< whatever the kernel's default policy gives (first touch)
  kNode,        ///< prefer one NUMA node (AllocateOptions::node)
  kInterleave,  ///< interleave pages across all nodes (shared inputs)
};

/// \brief An owning, cache-line aligned region of memory.
///
/// The buffer is zero-initialized on allocation (like the 4 MB pages the
/// Intel API hands out on the Xeon+FPGA platform, Section 2.1) unless the
/// caller opts into first-touch placement with `zero = false`.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  struct AllocateOptions {
    size_t alignment = kCacheLineSize;
    NumaPlacement placement = NumaPlacement::kDefault;
    /// Preferred node for NumaPlacement::kNode.
    int node = 0;
    /// When false the region is left untouched (no memset): the caller
    /// promises to write every page before reading it, so the kernel's
    /// first-touch policy places each page on the node of the thread that
    /// touches it — the NUMA-local idiom for per-worker scratch.
    bool zero = true;
  };

  /// Allocate `size` bytes aligned to `alignment` (default one cache line).
  static Result<AlignedBuffer> Allocate(size_t size,
                                        size_t alignment = kCacheLineSize);

  /// Allocate with explicit NUMA placement / first-touch control.
  static Result<AlignedBuffer> AllocateWith(size_t size,
                                            const AllocateOptions& options);

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  template <typename T>
  T* mutable_data_as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* data_as() const {
    return reinterpret_cast<const T*>(data_);
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { *this = std::move(other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ~AlignedBuffer() { Free(); }

  FPART_DISALLOW_COPY_AND_ASSIGN(AlignedBuffer);

 private:
  void Free();

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fpart
