// Cache-line aligned, owning byte buffers. The FPGA circuit and the
// software write-combining partitioner both operate on 64 B cache lines,
// so all relation storage is allocated at that alignment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/macros.h"
#include "common/status.h"

namespace fpart {

/// \brief An owning, cache-line aligned region of memory.
///
/// The buffer is zero-initialized on allocation (like the 4 MB pages the
/// Intel API hands out on the Xeon+FPGA platform, Section 2.1).
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  /// Allocate `size` bytes aligned to `alignment` (default one cache line).
  static Result<AlignedBuffer> Allocate(size_t size,
                                        size_t alignment = kCacheLineSize);

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  template <typename T>
  T* mutable_data_as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* data_as() const {
    return reinterpret_cast<const T*>(data_);
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { *this = std::move(other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ~AlignedBuffer() { Free(); }

  FPART_DISALLOW_COPY_AND_ASSIGN(AlignedBuffer);

 private:
  void Free();

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fpart
