#include "common/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace fpart {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdLevel DetectSimdLevel() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  static const SimdLevel detected = [] {
    if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("sse4.2")) {
      return SimdLevel::kScalar;
    }
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq")) {
      return SimdLevel::kAvx512;
    }
    return SimdLevel::kAvx2;
  }();
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel active = [] {
    SimdLevel level = DetectSimdLevel();
    const char* v = std::getenv("FPART_SIMD");
    if (v != nullptr) {
      if (std::strcmp(v, "scalar") == 0) {
        level = SimdLevel::kScalar;
      } else if (std::strcmp(v, "avx2") == 0 &&
                 SimdLevelAtLeast(level, SimdLevel::kAvx2)) {
        level = SimdLevel::kAvx2;
      }
    }
    return level;
  }();
  return active;
}

}  // namespace fpart
