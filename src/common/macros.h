// Common macros used across fpart.
#pragma once

#define FPART_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

#define FPART_CONCAT_IMPL(x, y) x##y
#define FPART_CONCAT(x, y) FPART_CONCAT_IMPL(x, y)

/// Propagate a non-OK Status out of the current function.
#define FPART_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::fpart::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluate a Result<T> expression; on error return the Status, otherwise
/// bind the value to `lhs`.
#define FPART_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                \
  if (!result_name.ok()) return result_name.status();        \
  lhs = std::move(result_name).ValueUnsafe()

#define FPART_ASSIGN_OR_RETURN(lhs, rexpr) \
  FPART_ASSIGN_OR_RETURN_IMPL(FPART_CONCAT(_fpart_result_, __COUNTER__), lhs, rexpr)

#if defined(__GNUC__) || defined(__clang__)
#define FPART_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define FPART_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define FPART_NOINLINE __attribute__((noinline))
#define FPART_FORCE_INLINE inline __attribute__((always_inline))
#else
#define FPART_PREDICT_TRUE(x) (x)
#define FPART_PREDICT_FALSE(x) (x)
#define FPART_NOINLINE
#define FPART_FORCE_INLINE inline
#endif

namespace fpart {

/// Cache-line size assumed throughout the system (the Xeon+FPGA platform's
/// QPI transfer granularity, Section 2.1 of the paper).
inline constexpr int kCacheLineSize = 64;

/// Software prefetch hints used by the vectorized CPU hot paths. No-ops on
/// compilers without __builtin_prefetch.
inline void PrefetchForRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

inline void PrefetchForWrite(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1, 3);
#else
  (void)p;
#endif
}

}  // namespace fpart
