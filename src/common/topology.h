// Host CPU topology discovery and worker-pinning policy.
//
// The paper's CPU baseline is memory-bound (Section 5): partitioning
// throughput is governed by cache/TLB behaviour and socket locality, so
// where the OS schedules a worker and on which NUMA node its scratch
// lives is a first-order effect. This module discovers the host layout
// (cores, hyperthread siblings, packages, NUMA nodes) from sysfs — with a
// portable single-node fallback — and turns an AffinityPolicy into a
// per-worker pin plan that ThreadPool and the svc runtime apply.
//
// Policy selection: the FPART_AFFINITY environment variable
// (none|compact|scatter|numa-local) is the global knob; ThreadPool's
// constructor defaults to it, so every pool in the benches and the
// service inherits the policy without per-call-site plumbing.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"

namespace fpart {

/// How worker threads are pinned to CPUs.
enum class AffinityPolicy {
  /// No pinning; the OS scheduler places workers (the pre-PR-7 behaviour).
  kNone,
  /// Fill physical cores in order, hyperthread siblings adjacent: workers
  /// pack onto the fewest cores/sockets. Maximizes cache sharing between
  /// neighbouring workers (and exposes the HT-pairing penalty on purpose).
  kCompact,
  /// One worker per physical core across all sockets before any
  /// hyperthread sibling is used: maximizes private cache and memory
  /// bandwidth per worker.
  kScatter,
  /// Scatter, but workers are assigned to NUMA nodes in contiguous
  /// blocks (node-major worker order) so ParallelForNodeChunks hands each
  /// node's workers one contiguous, node-local range.
  kNumaLocal,
};

const char* AffinityPolicyName(AffinityPolicy policy);

/// Parse "none|compact|scatter|numa-local" (also accepts "numa_local").
/// Returns false (and leaves *policy untouched) on unknown spellings.
bool ParseAffinityPolicy(std::string_view s, AffinityPolicy* policy);

/// The process-wide default policy: FPART_AFFINITY, or kNone when unset
/// or unparseable. Read once and cached.
AffinityPolicy AffinityPolicyFromEnv();

/// One logical CPU as discovered from sysfs.
struct CpuSlot {
  int cpu = 0;      ///< logical CPU id (sched_setaffinity mask bit)
  int core = 0;     ///< physical core id within the package
  int package = 0;  ///< socket id
  int node = 0;     ///< NUMA node id
  /// 0 for the first hyperthread seen on the core, 1 for its sibling, ...
  int smt = 0;
};

/// \brief The host's CPU/NUMA layout plus pin-plan construction.
///
/// Detection reads /sys/devices/system/cpu and /sys/devices/system/node;
/// when sysfs is unavailable (non-Linux, sandboxes) it falls back to
/// hardware_concurrency() CPUs on one node — every policy then still
/// produces a valid plan, it just cannot express socket placement.
class Topology {
 public:
  /// The detected host topology (computed once, cached for the process).
  static const Topology& Host();

  /// Fresh detection (tests use this to exercise the sysfs reader).
  static Topology Detect();

  /// Synthetic topology for tests: `cpus_per_node` logical CPUs on each
  /// of `nodes` nodes, `smt` hyperthreads per core, one package per node.
  static Topology Synthetic(int nodes, int cpus_per_node, int smt = 1);

  size_t num_cpus() const { return cpus_.size(); }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_cores() const { return num_cores_; }
  const std::vector<CpuSlot>& cpus() const { return cpus_; }

  /// NUMA node of a logical CPU id; 0 when unknown.
  int NodeOfCpu(int cpu) const;

  /// \brief One worker's pin assignment. cpu == -1 means "do not pin"
  /// (kNone, or more workers than CPUs make pinning pointless for the
  /// overflow workers — they still carry a node tag for scratch placement).
  struct Pin {
    int cpu = -1;
    int node = 0;
  };

  /// Per-worker pin plan for `num_threads` workers under `policy`.
  /// Deterministic for a fixed topology. kNumaLocal orders workers
  /// node-major (workers of one node are index-contiguous).
  std::vector<Pin> PinPlan(AffinityPolicy policy, size_t num_threads) const;

 private:
  std::vector<CpuSlot> cpus_;  // sorted by logical cpu id
  size_t num_nodes_ = 1;
  size_t num_cores_ = 1;
};

/// Pin the calling thread to one logical CPU. Returns false when the
/// platform has no affinity syscall or the kernel rejects the mask (both
/// are non-fatal: the worker simply stays unpinned).
bool PinCurrentThreadToCpu(int cpu);

/// \brief Identity of the current pool worker, published by ThreadPool /
/// svc workers via SetCurrentWorkerContext so that trace spans and
/// NUMA-aware allocators can attribute work without plumbing arguments
/// through every call chain. worker == -1 outside any pool worker.
struct WorkerContext {
  int worker = -1;  ///< worker index within its pool
  int node = -1;    ///< NUMA node the worker is pinned/tagged to
  int cpu = -1;     ///< logical CPU the worker is pinned to (-1 unpinned)
  const char* pool = nullptr;  ///< pool name (static or pool-owned string)
};

/// Thread-local worker identity (default-constructed outside workers).
const WorkerContext& CurrentWorkerContext();
void SetCurrentWorkerContext(const WorkerContext& ctx);

}  // namespace fpart
