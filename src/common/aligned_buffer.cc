#include "common/aligned_buffer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace fpart {

namespace {
// Large buffers are 2 MB-aligned and advised to use transparent huge
// pages. A high-fanout partitioning pass keeps one write stream per
// partition live, which with 4 KB pages means far more hot pages than
// DTLB entries — a TLB miss per cache-line flush. 2 MB pages cover a
// 128 MB output with 64 entries.
constexpr size_t kHugePageSize = 2 * 1024 * 1024;
}  // namespace

Result<AlignedBuffer> AlignedBuffer::Allocate(size_t size, size_t alignment) {
  if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
    return Status::InvalidArgument("alignment must be a power of two");
  }
  AlignedBuffer buf;
  if (size == 0) return buf;
  // Round the size up to a multiple of the alignment, as required by
  // std::aligned_alloc and convenient for whole-cache-line transfers.
  size_t alloc_size = (size + alignment - 1) & ~(alignment - 1);
#if defined(__linux__)
  const bool huge = alloc_size >= kHugePageSize;
  if (huge) {
    alignment = std::max(alignment, kHugePageSize);
    alloc_size = (alloc_size + kHugePageSize - 1) & ~(kHugePageSize - 1);
  }
#endif
  void* p = std::aligned_alloc(alignment, alloc_size);
  if (p == nullptr) {
    return Status::CapacityError("failed to allocate " +
                                 std::to_string(alloc_size) + " bytes");
  }
#if defined(__linux__)
  // Advisory only: the memset below then populates the region with huge
  // pages where the kernel can supply them.
  if (huge) madvise(p, alloc_size, MADV_HUGEPAGE);
#endif
  std::memset(p, 0, alloc_size);
  buf.data_ = static_cast<uint8_t*>(p);
  buf.size_ = size;
  return buf;
}

void AlignedBuffer::Free() {
  std::free(data_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace fpart
