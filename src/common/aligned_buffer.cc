#include "common/aligned_buffer.h"

#include <cstdlib>
#include <cstring>
#include <string>

namespace fpart {

Result<AlignedBuffer> AlignedBuffer::Allocate(size_t size, size_t alignment) {
  if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
    return Status::InvalidArgument("alignment must be a power of two");
  }
  AlignedBuffer buf;
  if (size == 0) return buf;
  // Round the size up to a multiple of the alignment, as required by
  // std::aligned_alloc and convenient for whole-cache-line transfers.
  size_t alloc_size = (size + alignment - 1) & ~(alignment - 1);
  void* p = std::aligned_alloc(alignment, alloc_size);
  if (p == nullptr) {
    return Status::CapacityError("failed to allocate " +
                                 std::to_string(alloc_size) + " bytes");
  }
  std::memset(p, 0, alloc_size);
  buf.data_ = static_cast<uint8_t*>(p);
  buf.size_ = size;
  return buf;
}

void AlignedBuffer::Free() {
  std::free(data_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace fpart
