#include "common/aligned_buffer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/topology.h"

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace fpart {

namespace {
// Large buffers are 2 MB-aligned and advised to use transparent huge
// pages. A high-fanout partitioning pass keeps one write stream per
// partition live, which with 4 KB pages means far more hot pages than
// DTLB entries — a TLB miss per cache-line flush. 2 MB pages cover a
// 128 MB output with 64 entries.
constexpr size_t kHugePageSize = 2 * 1024 * 1024;

#if defined(__linux__)
// mbind(2) via raw syscall: glibc only exposes it through libnuma, which
// we do not depend on. Policy constants from <numaif.h>.
constexpr int kMpolPreferred = 1;
constexpr int kMpolInterleave = 3;

// Apply a NUMA policy to [p, p+len) before any page is touched. Advisory:
// failures (old kernels, cpusets, seccomp) are ignored and the region
// falls back to the default first-touch policy.
void BindRegion(void* p, size_t len, NumaPlacement placement, int node) {
  const size_t num_nodes = Topology::Host().num_nodes();
  if (placement == NumaPlacement::kDefault || num_nodes <= 1) return;
  unsigned long mask = 0;
  int mode = 0;
  if (placement == NumaPlacement::kNode) {
    if (node < 0 || static_cast<size_t>(node) >= num_nodes) node = 0;
    mask = 1UL << node;
    mode = kMpolPreferred;
  } else {  // kInterleave
    mask = (num_nodes >= sizeof(mask) * 8) ? ~0UL : ((1UL << num_nodes) - 1);
    mode = kMpolInterleave;
  }
  // maxnode counts bits and must exceed the highest set bit.
  syscall(SYS_mbind, p, len, mode, &mask, sizeof(mask) * 8 + 1, 0UL);
}
#endif
}  // namespace

Result<AlignedBuffer> AlignedBuffer::Allocate(size_t size, size_t alignment) {
  AllocateOptions options;
  options.alignment = alignment;
  return AllocateWith(size, options);
}

Result<AlignedBuffer> AlignedBuffer::AllocateWith(
    size_t size, const AllocateOptions& options) {
  size_t alignment = options.alignment;
  if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
    return Status::InvalidArgument("alignment must be a power of two");
  }
  AlignedBuffer buf;
  if (size == 0) return buf;
#if defined(__linux__)
  // mbind requires page-aligned regions; NUMA placement below cache-line
  // granularity is meaningless anyway.
  if (options.placement != NumaPlacement::kDefault) {
    alignment = std::max<size_t>(alignment,
                                 static_cast<size_t>(sysconf(_SC_PAGESIZE)));
  }
#endif
  // Round the size up to a multiple of the alignment, as required by
  // std::aligned_alloc and convenient for whole-cache-line transfers.
  size_t alloc_size = (size + alignment - 1) & ~(alignment - 1);
#if defined(__linux__)
  const bool huge = alloc_size >= kHugePageSize;
  if (huge) {
    alignment = std::max(alignment, kHugePageSize);
    alloc_size = (alloc_size + kHugePageSize - 1) & ~(kHugePageSize - 1);
  }
#endif
  void* p = std::aligned_alloc(alignment, alloc_size);
  if (p == nullptr) {
    return Status::CapacityError("failed to allocate " +
                                 std::to_string(alloc_size) + " bytes");
  }
#if defined(__linux__)
  // Advisory only: the first touch below (or by the caller, when zeroing
  // is deferred) then populates the region with huge pages where the
  // kernel can supply them.
  if (huge) madvise(p, alloc_size, MADV_HUGEPAGE);
  // Policy must be in place before the first touch commits the pages.
  BindRegion(p, alloc_size, options.placement, options.node);
#endif
  if (options.zero) std::memset(p, 0, alloc_size);
  buf.data_ = static_cast<uint8_t*>(p);
  buf.size_ = size;
  return buf;
}

void AlignedBuffer::Free() {
  std::free(data_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace fpart
