// Environment-variable driven configuration for benchmarks and examples.
#pragma once

#include <cstddef>

namespace fpart {

/// Scale factor applied to paper-size workloads by the bench binaries.
/// FPART_SCALE=8 reproduces the paper's full 128e6-tuple relations;
/// the default (1) runs each experiment at 1/8 size so the whole harness
/// finishes in minutes. Values are clamped to [1/64, 64].
double BenchScale();

/// Maximum CPU threads used by the benches (FPART_THREADS). Defaults to
/// min(hardware_concurrency, 10) to mirror the paper's 10-core Xeon.
size_t BenchMaxThreads();

/// Parse a positive double from an env var, or return `def`.
double EnvDouble(const char* name, double def);

/// Parse a non-negative integer from an env var, or return `def`.
size_t EnvSizeT(const char* name, size_t def);

}  // namespace fpart
