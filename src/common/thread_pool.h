// A small fixed-size thread pool used by the parallel CPU partitioner,
// the parallel build+probe phase of the radix join, and the svc runtime's
// backend executors.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/topology.h"

namespace fpart {

/// \brief Fixed-size pool of worker threads executing submitted closures.
///
/// Designed for the fork/join pattern of the partitioned join: submit one
/// task per morsel, then WaitIdle() as the barrier between phases.
///
/// Workers are optionally pinned to CPUs according to an AffinityPolicy
/// (default: the process-wide FPART_AFFINITY knob). Pinning happens in the
/// constructor, so worker_cpu()/worker_node()/pinned_workers() are valid
/// as soon as the pool exists. Every worker publishes its identity through
/// SetCurrentWorkerContext, which trace spans and NUMA-aware allocators
/// read back without any argument plumbing.
///
/// A task that throws does not kill its worker: the first exception of a
/// batch is captured and rethrown from the next WaitIdle() (and therefore
/// from ParallelFor()), mirroring what the submitter would have seen had
/// the task run inline. Later exceptions of the same batch are dropped.
class ThreadPool {
 public:
  /// \param name      worker thread name prefix (worker i is "<name>/<i>",
  ///                  truncated to the kernel's 15-character limit).
  /// \param affinity  worker pinning policy; the default inherits the
  ///                  FPART_AFFINITY environment knob so every pool in the
  ///                  benches and the service picks it up automatically.
  explicit ThreadPool(size_t num_threads,
                      const std::string& name = "fpart-wkr",
                      AffinityPolicy affinity = AffinityPolicyFromEnv());
  ~ThreadPool();

  FPART_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueue a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished. Rethrows the first
  /// exception any task of the batch threw (the pool stays usable).
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

  /// The pinning policy this pool was built with.
  AffinityPolicy affinity() const { return affinity_; }

  /// Logical CPU worker `i` is pinned to, or -1 when unpinned.
  int worker_cpu(size_t i) const { return plan_[i].cpu; }

  /// NUMA node tag of worker `i` (0 when unknown / unpinned).
  int worker_node(size_t i) const { return plan_[i].node; }

  /// Number of workers whose pin mask the kernel accepted. Zero under
  /// kNone or when the platform has no affinity support.
  size_t pinned_workers() const { return pinned_workers_; }

  /// Run `fn(worker_index)` on `n` logical workers in parallel and wait.
  /// When n == 1 the call runs inline on the caller (matching the paper's
  /// single-threaded measurements, which do not pay thread hand-off costs).
  /// Worker exceptions propagate to the caller, as with WaitIdle().
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// \brief Node-partitioned ParallelFor: split [0, total) into
  /// num_threads() contiguous even chunks, hand the chunks out node-major,
  /// and let each executing worker claim a chunk tagged with its own NUMA
  /// node first (falling back to stealing any unclaimed chunk, so the
  /// range is always covered exactly once even when the scheduler lands
  /// tasks unevenly). `fn(chunk, begin, end)` — chunk ids are the
  /// node-major chunk indices, not thread ids. On a single-node host this
  /// degenerates to a plain even split.
  void ParallelForNodeChunks(
      size_t total,
      const std::function<void(size_t chunk, size_t begin, size_t end)>& fn);

 private:
  void WorkerLoop(size_t index);

  std::string name_;
  AffinityPolicy affinity_ = AffinityPolicy::kNone;
  std::vector<Topology::Pin> plan_;  // one entry per worker
  size_t pinned_workers_ = 0;
  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t in_flight_ = 0;
  bool started_ = false;  ///< workers hold until the ctor finishes pinning
  bool shutdown_ = false;
  /// First exception thrown by a task since the last WaitIdle().
  std::exception_ptr first_error_;
};

}  // namespace fpart
