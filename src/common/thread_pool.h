// A small fixed-size thread pool used by the parallel CPU partitioner,
// the parallel build+probe phase of the radix join, and the svc runtime's
// backend executors.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace fpart {

/// \brief Fixed-size pool of worker threads executing submitted closures.
///
/// Designed for the fork/join pattern of the partitioned join: submit one
/// task per morsel, then WaitIdle() as the barrier between phases.
///
/// A task that throws does not kill its worker: the first exception of a
/// batch is captured and rethrown from the next WaitIdle() (and therefore
/// from ParallelFor()), mirroring what the submitter would have seen had
/// the task run inline. Later exceptions of the same batch are dropped.
class ThreadPool {
 public:
  /// \param name  worker thread name prefix (worker i is "<name>/<i>",
  ///              truncated to the kernel's 15-character limit).
  explicit ThreadPool(size_t num_threads, const std::string& name = "fpart-wkr");
  ~ThreadPool();

  FPART_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueue a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished. Rethrows the first
  /// exception any task of the batch threw (the pool stays usable).
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

  /// Run `fn(worker_index)` on `n` logical workers in parallel and wait.
  /// When n == 1 the call runs inline on the caller (matching the paper's
  /// single-threaded measurements, which do not pay thread hand-off costs).
  /// Worker exceptions propagate to the caller, as with WaitIdle().
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop(size_t index);

  std::string name_;
  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  /// First exception thrown by a task since the last WaitIdle().
  std::exception_ptr first_error_;
};

}  // namespace fpart
