// A small fixed-size thread pool used by the parallel CPU partitioner and
// the parallel build+probe phase of the radix join.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace fpart {

/// \brief Fixed-size pool of worker threads executing submitted closures.
///
/// Designed for the fork/join pattern of the partitioned join: submit one
/// task per morsel, then WaitIdle() as the barrier between phases.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  FPART_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueue a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

  /// Run `fn(worker_index)` on `n` logical workers in parallel and wait.
  /// When n == 1 the call runs inline on the caller (matching the paper's
  /// single-threaded measurements, which do not pay thread hand-off costs).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace fpart
