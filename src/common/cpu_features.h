// Runtime CPU-feature detection and dispatch policy for the SIMD fast
// paths (DESIGN.md "CPU fast paths").
//
// The library is compiled for the baseline ISA; kernels that need wider
// vectors carry per-function target attributes and are only entered when
// the *running* CPU supports them, so one binary serves every host. The
// FPART_SIMD environment variable can force a lower level ("scalar",
// "avx2"), which is how the parity tests exercise every fallback tier on
// wide machines.
#pragma once

namespace fpart {

/// Vector ISA levels the dispatcher distinguishes. Higher levels imply the
/// lower ones (kAvx2 hosts also have SSE4.2 for the CRC32-C instruction;
/// kAvx512 hosts can run the AVX2 kernels).
enum class SimdLevel {
  /// Portable scalar code only.
  kScalar = 0,
  /// AVX2: 8-wide 32-bit / 4-wide 64-bit hash kernels, hardware CRC32-C.
  kAvx2 = 1,
  /// AVX-512 (F+BW+DQ): 16-wide 32-bit / 8-wide 64-bit hash kernels,
  /// one-instruction key extraction / index packing, and single-store
  /// cache-line flushes.
  kAvx512 = 2,
};

/// Level ordering (enum class has no relational operators).
constexpr bool SimdLevelAtLeast(SimdLevel level, SimdLevel required) {
  return static_cast<int>(level) >= static_cast<int>(required);
}

const char* SimdLevelName(SimdLevel level);

/// Highest level the host CPU supports (detected once, then cached).
SimdLevel DetectSimdLevel();

/// The level the dispatch actually uses: DetectSimdLevel() capped by the
/// FPART_SIMD environment variable ("scalar" forces the fallback, "avx2"
/// caps a wider host at AVX2; unknown values mean no cap). Cached after
/// the first call — set the variable before first use.
SimdLevel ActiveSimdLevel();

}  // namespace fpart
