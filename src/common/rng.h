// Deterministic pseudo-random number generation for workload synthesis.
#pragma once

#include <cstdint>

namespace fpart {

/// \brief xoshiro256** generator: fast, high quality, deterministic across
/// platforms (unlike std::mt19937 shuffles/distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform 32-bit value.
  uint32_t Next32() { return static_cast<uint32_t>(Next() >> 32); }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  uint64_t Below(uint64_t bound) {
    if (bound == 0) return 0;
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace fpart
