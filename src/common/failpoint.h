// Fault-injection points for tests: named sites in production code that
// can be armed to force an error branch which otherwise only fires under
// real races or real hardware faults (a device run failing mid-lease, the
// admission queue filling at the exact wrong moment, a repartition commit
// losing its epoch race).
//
// A failpoint is a cheap inline check at the site:
//
//   if (Failpoint("svc.device.run")) return Status::Internal("...");
//
// Disarmed (the default) the check is one relaxed atomic load of a global
// armed-count — no lock, no string compare — so production paths pay
// nothing. Tests arm points programmatically:
//
//   FailpointRegistry::Global().Arm("svc.device.run", /*count=*/1);
//
// or through the environment (picked up once, at first registry use):
//
//   FPART_FAILPOINT="svc.device.run:1,stream.commit.stale"
//
// where the optional `:count` limits how many times the point fires
// (unlimited when omitted). Arming is process-global; tests should Disarm
// (or ClearAll) what they arm so suites stay independent.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>

#include "common/macros.h"

namespace fpart {

class FailpointRegistry {
 public:
  /// The process-wide registry. First use parses FPART_FAILPOINT.
  static FailpointRegistry& Global();

  /// Arm `name` to fire `count` times (default: unlimited).
  void Arm(const std::string& name,
           uint64_t count = std::numeric_limits<uint64_t>::max());
  /// Disarm `name`; its fired() tally survives until ClearAll().
  void Disarm(const std::string& name);
  /// Disarm everything and reset all tallies.
  void ClearAll();

  /// Site-side check: true if `name` is armed with budget remaining
  /// (consumes one firing). Prefer the Failpoint() wrapper below — it
  /// short-circuits on the armed-count fast path.
  bool Fire(const char* name);

  /// Times `name` actually fired since the last ClearAll().
  uint64_t fired(const std::string& name) const;
  /// Total armed points (the fast-path guard).
  int armed() const { return armed_count_.load(std::memory_order_relaxed); }

  /// Arm from a spec string ("name[:count][,name...]"); used for the
  /// FPART_FAILPOINT environment knob and directly testable. Returns the
  /// number of points armed.
  size_t ArmFromSpec(const std::string& spec);

 private:
  FailpointRegistry();
  FPART_DISALLOW_COPY_AND_ASSIGN(FailpointRegistry);

  struct Point {
    uint64_t remaining = 0;
    uint64_t fired = 0;
  };

  // armed_count_ counts points with remaining budget; sites only take the
  // lock when it is non-zero, so the disarmed cost is one relaxed load.
  std::atomic<int> armed_count_{0};
  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
};

/// The site-side check. Disarmed cost: one relaxed atomic load.
inline bool Failpoint(const char* name) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  if (reg.armed() == 0) return false;
  return reg.Fire(name);
}

}  // namespace fpart
