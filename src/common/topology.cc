#include "common/topology.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace fpart {
namespace {

// Read a small sysfs file holding one integer; `def` on any failure.
int ReadSysfsInt(const std::string& path, int def) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return def;
  int value = def;
  if (std::fscanf(f, "%d", &value) != 1) value = def;
  std::fclose(f);
  return value;
}

// Parse a sysfs cpulist ("0-3,8,10-11") into logical CPU ids.
std::vector<int> ParseCpuList(const std::string& path) {
  std::vector<int> cpus;
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return cpus;
  char buf[4096] = {};
  const size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  (void)got;
  const char* p = buf;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    long lo = std::strtol(p, &end, 10);
    if (end == p) break;
    long hi = lo;
    p = end;
    if (*p == '-') {
      hi = std::strtol(p + 1, &end, 10);
      if (end == p + 1) break;
      p = end;
    }
    for (long c = lo; c <= hi && c - lo < 4096; ++c) {
      cpus.push_back(static_cast<int>(c));
    }
    if (*p == ',') ++p;
  }
  return cpus;
}

Topology FallbackTopology() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return Topology::Synthetic(/*nodes=*/1, /*cpus_per_node=*/
                             static_cast<int>(hw), /*smt=*/1);
}

}  // namespace

const char* AffinityPolicyName(AffinityPolicy policy) {
  switch (policy) {
    case AffinityPolicy::kNone:
      return "none";
    case AffinityPolicy::kCompact:
      return "compact";
    case AffinityPolicy::kScatter:
      return "scatter";
    case AffinityPolicy::kNumaLocal:
      return "numa-local";
  }
  return "unknown";
}

bool ParseAffinityPolicy(std::string_view s, AffinityPolicy* policy) {
  if (s == "none") {
    *policy = AffinityPolicy::kNone;
  } else if (s == "compact") {
    *policy = AffinityPolicy::kCompact;
  } else if (s == "scatter") {
    *policy = AffinityPolicy::kScatter;
  } else if (s == "numa-local" || s == "numa_local") {
    *policy = AffinityPolicy::kNumaLocal;
  } else {
    return false;
  }
  return true;
}

AffinityPolicy AffinityPolicyFromEnv() {
  static const AffinityPolicy policy = [] {
    AffinityPolicy p = AffinityPolicy::kNone;
    const char* v = std::getenv("FPART_AFFINITY");
    if (v != nullptr && *v != '\0' && !ParseAffinityPolicy(v, &p)) {
      std::fprintf(stderr,
                   "fpart: ignoring FPART_AFFINITY=%s "
                   "(none|compact|scatter|numa-local)\n",
                   v);
    }
    return p;
  }();
  return policy;
}

const Topology& Topology::Host() {
  static const Topology* const host = new Topology(Detect());
  return *host;
}

Topology Topology::Detect() {
#if defined(__linux__)
  Topology topo;
  std::vector<int> online =
      ParseCpuList("/sys/devices/system/cpu/online");
  if (online.empty()) return FallbackTopology();

  // Node of each CPU from the node side (cpuX has no "node" file; the
  // node directories list their CPUs instead).
  std::map<int, int> cpu_node;
  std::vector<int> nodes =
      ParseCpuList("/sys/devices/system/node/online");
  for (int node : nodes) {
    const std::string list =
        "/sys/devices/system/node/node" + std::to_string(node) + "/cpulist";
    for (int cpu : ParseCpuList(list)) cpu_node[cpu] = node;
  }

  // Hyperthread index: order of appearance within each (package, core).
  std::map<std::pair<int, int>, int> smt_seen;
  for (int cpu : online) {
    const std::string base =
        "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    CpuSlot slot;
    slot.cpu = cpu;
    slot.core = ReadSysfsInt(base + "core_id", cpu);
    slot.package = ReadSysfsInt(base + "physical_package_id", 0);
    if (slot.package < 0) slot.package = 0;
    auto it = cpu_node.find(cpu);
    slot.node = it != cpu_node.end() ? it->second : 0;
    slot.smt = smt_seen[{slot.package, slot.core}]++;
    topo.cpus_.push_back(slot);
  }
  int max_node = 0;
  std::map<std::pair<int, int>, int> cores;
  for (const CpuSlot& s : topo.cpus_) {
    max_node = std::max(max_node, s.node);
    cores[{s.package, s.core}] = 1;
  }
  topo.num_nodes_ = static_cast<size_t>(max_node) + 1;
  topo.num_cores_ = std::max<size_t>(1, cores.size());
  return topo;
#else
  return FallbackTopology();
#endif
}

Topology Topology::Synthetic(int nodes, int cpus_per_node, int smt) {
  Topology topo;
  if (nodes < 1) nodes = 1;
  if (cpus_per_node < 1) cpus_per_node = 1;
  if (smt < 1) smt = 1;
  const int cores_per_node = std::max(1, cpus_per_node / smt);
  int cpu = 0;
  for (int n = 0; n < nodes; ++n) {
    for (int c = 0; c < cpus_per_node; ++c) {
      CpuSlot slot;
      slot.cpu = cpu++;
      // Siblings of one core get consecutive smt indices; ids follow the
      // common Linux enumeration where siblings are cores_per_node apart.
      slot.core = c % cores_per_node;
      slot.package = n;
      slot.node = n;
      slot.smt = c / cores_per_node;
      topo.cpus_.push_back(slot);
    }
  }
  topo.num_nodes_ = static_cast<size_t>(nodes);
  topo.num_cores_ = static_cast<size_t>(nodes) * cores_per_node;
  return topo;
}

int Topology::NodeOfCpu(int cpu) const {
  for (const CpuSlot& s : cpus_) {
    if (s.cpu == cpu) return s.node;
  }
  return 0;
}

std::vector<Topology::Pin> Topology::PinPlan(AffinityPolicy policy,
                                             size_t num_threads) const {
  std::vector<Pin> plan(num_threads);
  if (policy == AffinityPolicy::kNone || cpus_.empty()) {
    return plan;  // all {-1, 0}: unpinned
  }

  std::vector<CpuSlot> order = cpus_;
  switch (policy) {
    case AffinityPolicy::kCompact:
      // Pack: fill each core's siblings, then the next core, then the
      // next package.
      std::stable_sort(order.begin(), order.end(),
                       [](const CpuSlot& a, const CpuSlot& b) {
                         return std::tie(a.package, a.core, a.smt, a.cpu) <
                                std::tie(b.package, b.core, b.smt, b.cpu);
                       });
      break;
    case AffinityPolicy::kScatter:
      // Spread: one hyperthread per core across every package first;
      // siblings only once every core already has a worker.
      std::stable_sort(order.begin(), order.end(),
                       [](const CpuSlot& a, const CpuSlot& b) {
                         return std::tie(a.smt, a.package, a.core, a.cpu) <
                                std::tie(b.smt, b.package, b.core, b.cpu);
                       });
      break;
    case AffinityPolicy::kNumaLocal:
      // Node-major so each node's workers are index-contiguous (the
      // contract ParallelForNodeChunks relies on); within a node,
      // scatter across cores before siblings.
      std::stable_sort(order.begin(), order.end(),
                       [](const CpuSlot& a, const CpuSlot& b) {
                         return std::tie(a.node, a.smt, a.core, a.cpu) <
                                std::tie(b.node, b.smt, b.core, b.cpu);
                       });
      break;
    case AffinityPolicy::kNone:
      break;
  }

  for (size_t t = 0; t < num_threads; ++t) {
    if (t < order.size()) {
      plan[t].cpu = order[t].cpu;
      plan[t].node = order[t].node;
    } else {
      // Oversubscribed: leave the overflow workers unpinned (pinning two
      // workers to one CPU serializes them) but keep a round-robin node
      // tag so scratch placement still spreads.
      plan[t].cpu = -1;
      plan[t].node = order[t % order.size()].node;
    }
  }
  return plan;
}

bool PinCurrentThreadToCpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

namespace {
thread_local WorkerContext g_worker_context;
}  // namespace

const WorkerContext& CurrentWorkerContext() { return g_worker_context; }

void SetCurrentWorkerContext(const WorkerContext& ctx) {
  g_worker_context = ctx;
}

}  // namespace fpart
