#include "common/failpoint.h"

#include <cstdlib>

namespace fpart {

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* reg = new FailpointRegistry();
  return *reg;
}

FailpointRegistry::FailpointRegistry() {
  const char* env = std::getenv("FPART_FAILPOINT");
  if (env != nullptr && env[0] != '\0') ArmFromSpec(env);
}

size_t FailpointRegistry::ArmFromSpec(const std::string& spec) {
  size_t armed = 0;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    uint64_t count = std::numeric_limits<uint64_t>::max();
    const size_t colon = entry.find(':');
    if (colon != std::string::npos) {
      count = std::strtoull(entry.c_str() + colon + 1, nullptr, 10);
      entry.resize(colon);
    }
    if (entry.empty() || count == 0) continue;
    Arm(entry, count);
    ++armed;
  }
  return armed;
}

void FailpointRegistry::Arm(const std::string& name, uint64_t count) {
  if (count == 0) {
    Disarm(name);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[name];
  if (p.remaining == 0) armed_count_.fetch_add(1, std::memory_order_relaxed);
  p.remaining = count;
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || it->second.remaining == 0) return;
  it->second.remaining = 0;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FailpointRegistry::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, p] : points_) {
    if (p.remaining != 0) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  points_.clear();
}

bool FailpointRegistry::Fire(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || it->second.remaining == 0) return false;
  --it->second.remaining;
  ++it->second.fired;
  if (it->second.remaining == 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

uint64_t FailpointRegistry::fired(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fired;
}

}  // namespace fpart
