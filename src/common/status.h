// Status / Result error model, following the Arrow/RocksDB idiom: fallible
// operations return Status (or Result<T>), exceptions are not used on hot
// paths.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace fpart {

/// Machine-readable error category of a Status.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kCapacityError = 3,
  /// PAD-mode partition overflow (Section 4.5): the operation must be
  /// retried in HIST mode or fall back to the CPU partitioner.
  kPartitionOverflow = 4,
  kNotImplemented = 5,
  kIOError = 6,
  kInternal = 7,
  /// The operation's cancellation token fired (svc job cancellation); the
  /// work was abandoned at the next check point and no result exists.
  kCancelled = 8,
  /// SLO-aware admission rejected the job: its corrected completion-time
  /// prediction misses the deadline or the class latency SLO
  /// (svc/admission.h). Distinct from kCapacityError, which signals a
  /// full queue regardless of feasibility.
  kSloError = 9,
};

/// \brief Outcome of a fallible operation.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy in the OK case (single pointer).
class Status {
 public:
  Status() = default;

  Status(StatusCode code, std::string msg);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityError(std::string msg) {
    return Status(StatusCode::kCapacityError, std::move(msg));
  }
  static Status PartitionOverflow(std::string msg) {
    return Status(StatusCode::kPartitionOverflow, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status SloError(std::string msg) {
    return Status(StatusCode::kSloError, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  bool IsPartitionOverflow() const {
    return code() == StatusCode::kPartitionOverflow;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  /// Admission-control rejection (svc queue full) or allocation failure.
  bool IsCapacityError() const {
    return code() == StatusCode::kCapacityError;
  }
  /// SLO-feasibility rejection from the svc admission controller.
  bool IsSloError() const { return code() == StatusCode::kSloError; }

  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const;

  /// Human-readable "<code>: <message>" rendering ("OK" for success).
  std::string ToString() const;

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete state_;
      state_ = other.state_ ? new State(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : state_(other.state_) {
    other.state_ = nullptr;
  }
  Status& operator=(Status&& other) noexcept {
    if (this != &other) {
      delete state_;
      state_ = other.state_;
      other.state_ = nullptr;
    }
    return *this;
  }
  ~Status() { delete state_; }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  State* state_ = nullptr;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Use FPART_ASSIGN_OR_RETURN to unwrap.
template <typename T>
class Result {
 public:
  /// Construct from a value (implicit, enables `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Construct from an error status. Aborts if the status is OK, since an
  /// OK Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& ValueOrDie() const& { return *value_; }
  T& ValueOrDie() & { return *value_; }
  T ValueUnsafe() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Move the value out, or return `alternative` if this holds an error.
  T ValueOr(T alternative) && {
    return ok() ? std::move(*value_) : std::move(alternative);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace fpart
