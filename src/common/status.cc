#include "common/status.h"

namespace fpart {
namespace {

const std::string& EmptyString() {
  static const std::string empty;
  return empty;
}

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kCapacityError:
      return "Capacity error";
    case StatusCode::kPartitionOverflow:
      return "Partition overflow";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kSloError:
      return "SLO violation";
  }
  return "Unknown";
}

}  // namespace

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = new State{code, std::move(msg)};
  }
}

const std::string& Status::message() const {
  return state_ ? state_->msg : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace fpart
