#include "common/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fpart {
namespace {

// Name the calling thread "<prefix>/<index>", clipped to the 15-character
// limit of pthread_setname_np. Best effort; naming failures are ignored.
void NameCurrentThread(const std::string& prefix, size_t index) {
#if defined(__linux__)
  std::string name = prefix + "/" + std::to_string(index);
  if (name.size() > 15) name.resize(15);
  pthread_setname_np(pthread_self(), name.c_str());
#else
  (void)prefix;
  (void)index;
#endif
}

// Pin an already-running thread to one CPU; false when unsupported or
// rejected (the worker then simply stays where the OS put it).
bool PinThreadHandle(std::thread& t, int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(t.native_handle(), sizeof(set), &set) == 0;
#else
  (void)t;
  (void)cpu;
  return false;
#endif
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, const std::string& name,
                       AffinityPolicy affinity)
    : name_(name), affinity_(affinity) {
  if (num_threads == 0) num_threads = 1;
  plan_ = Topology::Host().PinPlan(affinity_, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
    if (PinThreadHandle(threads_.back(), plan_[i].cpu)) {
      ++pinned_workers_;
    } else {
      plan_[i].cpu = -1;  // record that this worker runs unpinned
    }
  }
  // Release the workers only once every pin result is recorded: WorkerLoop
  // reads plan_[index], which the loop above may rewrite.
  {
    std::unique_lock<std::mutex> lock(mu_);
    started_ = true;
  }
  cv_task_.notify_all();
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 1) {
    fn(0);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  WaitIdle();
}

void ThreadPool::ParallelForNodeChunks(
    size_t total,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t n = threads_.size();
  if (n == 1 || total == 0) {
    fn(0, 0, total);
    return;
  }

  // Chunk c covers [total*c/n, total*(c+1)/n) and carries the node tag of
  // worker c in the pin plan; under kNumaLocal the plan is node-major, so
  // each node's chunks form one contiguous slab of the input.
  struct Shared {
    std::vector<std::atomic<bool>> claimed;
    explicit Shared(size_t n) : claimed(n) {
      for (auto& c : claimed) c.store(false, std::memory_order_relaxed);
    }
  };
  auto shared = std::make_shared<Shared>(n);

  for (size_t i = 0; i < n; ++i) {
    Submit([this, shared, total, n, &fn] {
      const int my_node = CurrentWorkerContext().node;
      // Two passes: own-node chunks first, then steal anything unclaimed.
      // Each task claims exactly one chunk; n tasks + n chunks means every
      // chunk is run exactly once regardless of which worker runs which
      // task.
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t c = 0; c < n; ++c) {
          if (pass == 0 && plan_[c].node != my_node) continue;
          bool expected = false;
          if (shared->claimed[c].compare_exchange_strong(
                  expected, true, std::memory_order_acq_rel)) {
            fn(c, total * c / n, total * (c + 1) / n);
            return;
          }
        }
      }
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop(size_t index) {
  NameCurrentThread(name_, index);
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_task_.wait(lock, [this] { return started_ || shutdown_; });
  }
  {
    WorkerContext ctx;
    ctx.worker = static_cast<int>(index);
    ctx.node = plan_[index].node;
    ctx.cpu = plan_[index].cpu;
    ctx.pool = name_.c_str();  // name_ is immutable for the pool's lifetime
    SetCurrentWorkerContext(ctx);
  }
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace fpart
