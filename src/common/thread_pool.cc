#include "common/thread_pool.h"

namespace fpart {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 1) {
    fn(0);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace fpart
