#include "common/thread_pool.h"

#include <utility>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace fpart {
namespace {

// Name the calling thread "<prefix>/<index>", clipped to the 15-character
// limit of pthread_setname_np. Best effort; naming failures are ignored.
void NameCurrentThread(const std::string& prefix, size_t index) {
#if defined(__linux__)
  std::string name = prefix + "/" + std::to_string(index);
  if (name.size() > 15) name.resize(15);
  pthread_setname_np(pthread_self(), name.c_str());
#else
  (void)prefix;
  (void)index;
#endif
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, const std::string& name)
    : name_(name) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 1) {
    fn(0);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop(size_t index) {
  NameCurrentThread(name_, index);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace fpart
