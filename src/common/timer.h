// Wall-clock timing helpers for the CPU-side measurements.
#pragma once

#include <chrono>

namespace fpart {

/// \brief Monotonic stopwatch. Started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fpart
