// Multi-pass radix partitioning in the style of Manegold et al. [21]
// (Section 3.1): limit the fan-out of each pass so the shuffle stays
// TLB-friendly, at the cost of extra passes over the data. Kept as a
// baseline/ablation against the single-pass software-managed-buffer
// partitioner that superseded it (Balkesen et al. [3]).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "cpu/partitioner.h"
#include "hash/radix.h"

namespace fpart {

/// Two-pass partitioning into config.fanout partitions: pass 1 clusters on
/// the top `pass1_bits` of the radix window, pass 2 refines every cluster
/// on the remaining low bits. Results are bit-compatible with the
/// single-pass partitioner (same PartitionFn).
template <typename T>
Result<CpuRunResult<T>> MultipassPartition(const CpuPartitionerConfig& config,
                                           int pass1_bits, const T* tuples,
                                           size_t n) {
  constexpr int kK = TupleTraits<T>::kTuplesPerCacheLine;
  if (!IsPowerOfTwo(config.fanout)) {
    return Status::InvalidArgument("fanout must be a power of two");
  }
  const int total_bits = FanoutBits(config.fanout);
  if (pass1_bits < 1 || pass1_bits > total_bits) {
    return Status::InvalidArgument("pass1_bits must be in [1, log2(fanout)]");
  }
  if (pass1_bits == total_bits) {
    return CpuPartition(config, tuples, n);  // degenerates to one pass
  }
  if (config.hash == HashMethod::kMultiplicative ||
      config.hash == HashMethod::kRange) {
    // Multiplicative hashing slices the *top* bits of the product and
    // range partitioning compares whole keys; neither decomposes into
    // independent per-pass bit windows. Run the single-pass partitioner
    // instead (bit-compatible result).
    return CpuPartition(config, tuples, n);
  }
  const int pass2_bits = total_bits - pass1_bits;
  const uint32_t f1 = uint32_t{1} << pass1_bits;
  const uint32_t f2 = uint32_t{1} << pass2_bits;
  const size_t num_threads = std::max<size_t>(1, config.num_threads);

  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = config.pool;
  if (pool == nullptr && num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(num_threads);
    pool = own_pool.get();
  }

  // --- Pass 1: cluster on the high bits.
  CpuPartitionerConfig c1 = config;
  c1.fanout = f1;
  c1.shift = pass2_bits;
  c1.pool = pool;
  FPART_ASSIGN_OR_RETURN(CpuRunResult<T> pass1, CpuPartition(c1, tuples, n));

  // --- Pass 2: refine each cluster on the low bits. Clusters are
  // independent, so parallelism is across clusters.
  const PartitionFn fn2(config.hash, f2, /*shift=*/0);
  Timer pass2_timer;

  std::vector<uint64_t> final_hist(config.fanout, 0);
  auto hist_worker = [&](size_t t) {
    size_t begin = f1 * t / num_threads, end = f1 * (t + 1) / num_threads;
    for (size_t p1 = begin; p1 < end; ++p1) {
      BuildHistogram(fn2, pass1.output.partition_data(p1), 0,
                     pass1.output.part(p1).num_tuples,
                     final_hist.data() + p1 * f2);
    }
  };
  if (pool != nullptr && num_threads > 1) {
    pool->ParallelFor(num_threads, hist_worker);
  } else {
    hist_worker(0);
  }

  std::vector<uint32_t> capacity_cls(config.fanout);
  for (uint32_t g = 0; g < config.fanout; ++g) {
    capacity_cls[g] = static_cast<uint32_t>((final_hist[g] + kK - 1) / kK);
  }
  FPART_ASSIGN_OR_RETURN(PartitionedOutput<T> output,
                         PartitionedOutput<T>::Allocate(capacity_cls));
  T* out_base = reinterpret_cast<T*>(output.line(0));

  auto scatter_worker = [&](size_t t) {
    std::vector<uint64_t> cursor(f2);
    size_t begin = f1 * t / num_threads, end = f1 * (t + 1) / num_threads;
    for (size_t p1 = begin; p1 < end; ++p1) {
      for (uint32_t p2 = 0; p2 < f2; ++p2) {
        cursor[p2] = output.part(p1 * f2 + p2).base_cl * kK;
      }
      Scatter(fn2, pass1.output.partition_data(p1), 0,
              pass1.output.part(p1).num_tuples, cursor.data(), out_base,
              config);
    }
  };
  if (pool != nullptr && num_threads > 1) {
    pool->ParallelFor(num_threads, scatter_worker);
  } else {
    scatter_worker(0);
  }
  double pass2_seconds = pass2_timer.Seconds();

  CpuRunResult<T> result;
  for (uint32_t g = 0; g < config.fanout; ++g) {
    output.part(g).num_tuples = final_hist[g];
    output.part(g).written_cls = capacity_cls[g];
    T* data = output.partition_data(g);
    for (uint64_t i = final_hist[g];
         i < static_cast<uint64_t>(capacity_cls[g]) * kK; ++i) {
      data[i] = MakeDummyTuple<T>();
    }
  }
  result.output = std::move(output);
  result.histogram = std::move(final_hist);
  result.seconds = pass1.seconds + pass2_seconds;
  result.mtuples_per_sec =
      result.seconds > 0 ? n / result.seconds / 1e6 : 0.0;
  return result;
}

}  // namespace fpart
