// CPU-based partitioning (Section 3), following the open-sourced radix
// partitioner of Balkesen et al. [3] that the paper uses as its software
// baseline: single-pass, parallel, with per-thread histograms, a prefix sum
// for synchronization-free scatter, software-managed cache-resident write
// buffers (Code 2) and optional non-temporal streaming stores [38].
//
// The naive variant (Code 1: scatter each tuple directly to its partition)
// is kept for the ablation benchmarks.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/partitioned_output.h"
#include "datagen/tuple.h"
#include "hash/hash_function.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace fpart {

/// \brief Knobs of the software partitioner.
struct CpuPartitionerConfig {
  /// Number of partitions (power of two).
  uint32_t fanout = 8192;
  /// Radix bits (cheap) or murmur hashing (robust), Section 3.2.
  HashMethod hash = HashMethod::kRadix;
  /// Low (hashed-)key bits skipped before slicing the partition index;
  /// used by the multi-pass partitioner (pass 1 works on the high bits).
  int shift = 0;
  /// kRange only: fanout-1 sorted splitters (see EquiDepthSplitters).
  std::vector<uint64_t> range_splitters;
  size_t num_threads = 1;
  /// Code 2 software-managed buffers (true) vs Code 1 direct scatter.
  bool use_buffers = true;
  /// Non-temporal streaming stores for full buffer flushes [38].
  bool non_temporal = true;
  /// Optional shared pool; a private one is created per call when null.
  ThreadPool* pool = nullptr;
};

/// \brief Result of one CPU partitioning run (measured wall time).
template <typename T>
struct CpuRunResult {
  PartitionedOutput<T> output;
  double seconds = 0.0;
  double mtuples_per_sec = 0.0;
  std::vector<uint64_t> histogram;
};

namespace internal {

/// Flush one cache line worth of tuples from a write buffer to `dst`.
/// Uses streaming (non-temporal) stores when enabled and aligned, avoiding
/// the read-for-ownership of the destination line and cache pollution.
template <typename T>
inline void FlushLine(T* dst, const T* src, bool non_temporal) {
#if defined(__SSE2__)
  if (non_temporal && (reinterpret_cast<uintptr_t>(dst) % 64) == 0) {
    const __m128i* s = reinterpret_cast<const __m128i*>(src);
    __m128i* d = reinterpret_cast<__m128i*>(dst);
    for (int i = 0; i < 4; ++i) {
      _mm_stream_si128(d + i, _mm_loadu_si128(s + i));
    }
    return;
  }
#else
  (void)non_temporal;
#endif
  std::memcpy(dst, src, kCacheLineSize);
}

inline void StoreFence() {
#if defined(__SSE2__)
  _mm_sfence();
#endif
}

}  // namespace internal

/// Compute the partition histogram of `tuples[begin, end)`.
template <typename T>
void BuildHistogram(const PartitionFn& fn, const T* tuples, size_t begin,
                    size_t end, uint64_t* hist) {
  for (size_t i = begin; i < end; ++i) {
    uint32_t p;
    if constexpr (sizeof(tuples[i].key) == 4) {
      p = fn(tuples[i].key);
    } else {
      p = fn.Apply64(tuples[i].key);
    }
    ++hist[p];
  }
}

/// Scatter `tuples[begin, end)` into `out` using per-partition write
/// cursors `dst` (tuple indices into the global output buffer). The
/// cursors are advanced; with buffers enabled, tuples are staged in
/// cache-resident buffers and flushed one cache line at a time (Code 2).
template <typename T>
void Scatter(const PartitionFn& fn, const T* tuples, size_t begin, size_t end,
             uint64_t* dst, T* out_base, const CpuPartitionerConfig& config) {
  constexpr int kK = TupleTraits<T>::kTuplesPerCacheLine;
  if (!config.use_buffers) {
    // Code 1: one random cache-line touch per tuple.
    for (size_t i = begin; i < end; ++i) {
      uint32_t p;
      if constexpr (sizeof(tuples[i].key) == 4) {
        p = fn(tuples[i].key);
      } else {
        p = fn.Apply64(tuples[i].key);
      }
      out_base[dst[p]++] = tuples[i];
    }
    return;
  }
  // Code 2: software-managed buffers, one cache line per partition. The
  // buffer block must stay L1-resident for peak performance (Section 3.1).
  struct alignas(kCacheLineSize) Buffer {
    T slots[kK];
  };
  std::vector<Buffer> buffers(fn.fanout());
  std::vector<uint8_t> fill(fn.fanout(), 0);
  for (size_t i = begin; i < end; ++i) {
    uint32_t p;
    if constexpr (sizeof(tuples[i].key) == 4) {
      p = fn(tuples[i].key);
    } else {
      p = fn.Apply64(tuples[i].key);
    }
    buffers[p].slots[fill[p]] = tuples[i];
    if (++fill[p] == kK) {
      const uint32_t misalign = static_cast<uint32_t>(dst[p] & (kK - 1));
      if (misalign != 0) {
        // Per-thread cursors start mid-line for every thread but the
        // first (the prefix sum hands each thread a tuple-granular
        // range). Write the head tuples plainly until the cursor reaches
        // a line boundary — once per (thread, partition) run — so every
        // subsequent full flush is aligned and streams.
        const uint32_t head = kK - misalign;
        std::memcpy(out_base + dst[p], buffers[p].slots, head * sizeof(T));
        std::memmove(buffers[p].slots, buffers[p].slots + head,
                     misalign * sizeof(T));
        dst[p] += head;
        fill[p] = static_cast<uint8_t>(misalign);
      } else {
        // A full line at an aligned cursor: stream it to its destination.
        internal::FlushLine(out_base + dst[p], buffers[p].slots,
                            config.non_temporal);
        dst[p] += kK;
        fill[p] = 0;
      }
    }
  }
  // Drain partial buffers.
  for (uint32_t p = 0; p < fn.fanout(); ++p) {
    for (uint8_t b = 0; b < fill[p]; ++b) {
      out_base[dst[p]++] = buffers[p].slots[b];
    }
  }
  internal::StoreFence();
}

/// \brief Single-pass parallel radix/hash partitioning.
///
/// Phase 1: per-thread histograms over disjoint chunks. Phase 2: exclusive
/// prefix sums give every (thread, partition) pair a private output range,
/// so the scatter needs no synchronization. This mirrors [3]; the histogram
/// exists *for* that synchronization — the FPGA needs none (Section 4.7).
template <typename T>
Result<CpuRunResult<T>> CpuPartition(const CpuPartitionerConfig& config,
                                     const T* tuples, size_t n) {
  constexpr int kK = TupleTraits<T>::kTuplesPerCacheLine;
  if (!IsPowerOfTwo(config.fanout)) {
    return Status::InvalidArgument("fanout must be a power of two");
  }
  if (config.hash == HashMethod::kRange &&
      config.range_splitters.size() + 1 != config.fanout) {
    return Status::InvalidArgument(
        "range partitioning needs exactly fanout-1 splitters");
  }
  const PartitionFn fn =
      config.hash == HashMethod::kRange
          ? PartitionFn::Range(config.range_splitters)
          : PartitionFn(config.hash, config.fanout, config.shift);
  const size_t num_threads = std::max<size_t>(1, config.num_threads);

  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = config.pool;
  if (pool == nullptr && num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(num_threads);
    pool = own_pool.get();
  }

  auto chunk_begin = [&](size_t t) { return n * t / num_threads; };

  // Allocation is outside the timed region (pre-allocated outputs, as in
  // the baseline implementation).
  std::vector<std::vector<uint64_t>> hist(
      num_threads, std::vector<uint64_t>(config.fanout, 0));

  Timer timer;
  // --- Phase 1: histograms.
  if (num_threads == 1) {
    BuildHistogram(fn, tuples, 0, n, hist[0].data());
  } else {
    pool->ParallelFor(num_threads, [&](size_t t) {
      BuildHistogram(fn, tuples, chunk_begin(t), chunk_begin(t + 1),
                     hist[t].data());
    });
  }
  double hist_seconds = timer.Seconds();

  // --- Prefix sums: partition bases (cache-line granular so partitions
  // start aligned) and per-thread cursors within each partition.
  std::vector<uint64_t> part_total(config.fanout, 0);
  for (uint32_t p = 0; p < config.fanout; ++p) {
    for (size_t t = 0; t < num_threads; ++t) part_total[p] += hist[t][p];
  }
  std::vector<uint32_t> capacity_cls(config.fanout);
  for (uint32_t p = 0; p < config.fanout; ++p) {
    capacity_cls[p] = static_cast<uint32_t>((part_total[p] + kK - 1) / kK);
  }
  FPART_ASSIGN_OR_RETURN(PartitionedOutput<T> output,
                         PartitionedOutput<T>::Allocate(capacity_cls));
  T* out_base = reinterpret_cast<T*>(output.line(0));
  std::vector<std::vector<uint64_t>> cursor(
      num_threads, std::vector<uint64_t>(config.fanout, 0));
  for (uint32_t p = 0; p < config.fanout; ++p) {
    uint64_t base = output.part(p).base_cl * kK;
    for (size_t t = 0; t < num_threads; ++t) {
      cursor[t][p] = base;
      base += hist[t][p];
    }
  }

  // --- Phase 2: synchronization-free scatter.
  Timer scatter_timer;
  if (num_threads == 1) {
    Scatter(fn, tuples, 0, n, cursor[0].data(), out_base, config);
  } else {
    pool->ParallelFor(num_threads, [&](size_t t) {
      Scatter(fn, tuples, chunk_begin(t), chunk_begin(t + 1),
              cursor[t].data(), out_base, config);
    });
  }
  double seconds = hist_seconds + scatter_timer.Seconds();

  CpuRunResult<T> result;
  for (uint32_t p = 0; p < config.fanout; ++p) {
    output.part(p).num_tuples = part_total[p];
    output.part(p).written_cls = capacity_cls[p];
    // Mark the unused slots of the partition's last cache line as dummies,
    // the same convention the FPGA flush uses (Section 4.2), so consumers
    // can treat both outputs identically.
    T* data = output.partition_data(p);
    for (uint64_t i = part_total[p];
         i < static_cast<uint64_t>(capacity_cls[p]) * kK; ++i) {
      data[i] = MakeDummyTuple<T>();
    }
  }
  result.output = std::move(output);
  result.histogram = std::move(part_total);
  result.seconds = seconds;
  result.mtuples_per_sec = seconds > 0 ? n / seconds / 1e6 : 0.0;
  return result;
}

}  // namespace fpart
