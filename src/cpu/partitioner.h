// CPU-based partitioning (Section 3), following the open-sourced radix
// partitioner of Balkesen et al. [3] that the paper uses as its software
// baseline: single-pass, parallel, with per-thread histograms, a prefix sum
// for synchronization-free scatter, software-managed cache-resident write
// buffers (Code 2) and optional non-temporal streaming stores [38].
//
// The naive variant (Code 1: scatter each tuple directly to its partition)
// is kept for the ablation benchmarks.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/cpu_features.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/topology.h"
#include "datagen/partitioned_output.h"
#include "datagen/tuple.h"
#include "hash/hash_function.h"
#include "hash/simd_hash.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace fpart {

/// \brief Knobs of the software partitioner.
struct CpuPartitionerConfig {
  /// Number of partitions (power of two).
  uint32_t fanout = 8192;
  /// Radix bits (cheap) or murmur hashing (robust), Section 3.2.
  HashMethod hash = HashMethod::kRadix;
  /// Low (hashed-)key bits skipped before slicing the partition index;
  /// used by the multi-pass partitioner (pass 1 works on the high bits).
  int shift = 0;
  /// kRange only: fanout-1 sorted splitters (see EquiDepthSplitters).
  std::vector<uint64_t> range_splitters;
  size_t num_threads = 1;
  /// Code 2 software-managed buffers (true) vs Code 1 direct scatter.
  bool use_buffers = true;
  /// Non-temporal streaming stores for full buffer flushes [38].
  bool non_temporal = true;
  /// Fused single-hash fast path (DESIGN.md "CPU fast paths"): the
  /// histogram phase computes every chunk's partition indices once —
  /// batched through the SIMD kernels when the host supports them — into a
  /// per-thread index scratch that the scatter then replays, so no tuple
  /// is hashed twice and the scatter can prefetch its write buffers ahead.
  /// Opt-out knob so the ablation benches can chart the PR-1 scalar path.
  bool use_simd = true;
  /// Tuples of lookahead for the fused scatter's software prefetch of the
  /// per-partition write-buffer line (0 disables prefetching). Off by
  /// default: on the measured hosts the buffer block is L2-resident even
  /// at fanout 8192 (512 KB of 64 B buffers) and the extra index load per
  /// tuple costs more than the L2 latency it hides — see DESIGN.md.
  uint32_t prefetch_distance = 0;
  /// Optional shared pool; a private one is created per call when null.
  ThreadPool* pool = nullptr;
  /// Worker pinning policy for the private pool (ignored when `pool` is
  /// set — a shared pool was built with its own policy). Defaults to the
  /// process-wide FPART_AFFINITY knob.
  AffinityPolicy affinity = AffinityPolicyFromEnv();
  /// Cooperative cancellation token (svc job cancellation). Checked at
  /// phase boundaries only — never inside the per-tuple loops — so a
  /// running phase always completes before the run aborts with
  /// Status::Cancelled. Not owned; may be null.
  const std::atomic<bool>* cancel = nullptr;
};

/// \brief Result of one CPU partitioning run (measured wall time).
template <typename T>
struct CpuRunResult {
  PartitionedOutput<T> output;
  double seconds = 0.0;
  double mtuples_per_sec = 0.0;
  /// Phase split of `seconds` (prefix sums and allocation excluded).
  double histogram_seconds = 0.0;
  double scatter_seconds = 0.0;
  std::vector<uint64_t> histogram;
};

namespace internal {

/// Flush one cache line worth of tuples from a write buffer to `dst`.
/// Uses streaming (non-temporal) stores when enabled and aligned, avoiding
/// the read-for-ownership of the destination line and cache pollution.
template <typename T>
inline void FlushLine(T* dst, const T* src, bool non_temporal) {
#if defined(__SSE2__)
  if (non_temporal && (reinterpret_cast<uintptr_t>(dst) % 64) == 0) {
    const __m128i* s = reinterpret_cast<const __m128i*>(src);
    __m128i* d = reinterpret_cast<__m128i*>(dst);
    for (int i = 0; i < 4; ++i) {
      _mm_stream_si128(d + i, _mm_loadu_si128(s + i));
    }
    return;
  }
#else
  (void)non_temporal;
#endif
  std::memcpy(dst, src, kCacheLineSize);
}

/// FlushLine with an optional wide-store flush — one 64 B streaming store
/// at AVX-512, two 32 B ones at AVX2, instead of four 16 B ones; used by
/// the fused fast path.
template <typename T>
FPART_FORCE_INLINE void FlushLine(T* dst, const T* src, bool non_temporal,
                                  SimdLevel level) {
#if defined(FPART_HAS_X86_SIMD_KERNELS)
  if (non_temporal &&
      (reinterpret_cast<uintptr_t>(dst) % kCacheLineSize) == 0) {
    if (SimdLevelAtLeast(level, SimdLevel::kAvx512)) {
      simd::StreamLine64Avx512(dst, src);
      return;
    }
    if (SimdLevelAtLeast(level, SimdLevel::kAvx2)) {
      simd::StreamLine64Avx2(dst, src);
      return;
    }
  }
#else
  (void)level;
#endif
  FlushLine(dst, src, non_temporal);
}

inline void StoreFence() {
#if defined(__SSE2__)
  _mm_sfence();
#endif
}

/// One software-managed write-combining buffer: exactly one cache line of
/// tuples (Code 2, Section 3.1).
template <typename T>
struct alignas(kCacheLineSize) WriteBuffer {
  T slots[TupleTraits<T>::kTuplesPerCacheLine];
};

/// Drain a partially filled buffer (`count` < tuples-per-line) to `dst`.
/// When the cursor is line-aligned and streaming is enabled, whole
/// 16-byte chunks go out as non-temporal stores — only the trailing
/// sub-chunk (if any) falls back to plain stores — so the final drain no
/// longer pulls the destination lines into the cache.
template <typename T>
inline void DrainPartial(T* dst, const T* src, uint32_t count,
                         bool non_temporal) {
  const size_t bytes = size_t{count} * sizeof(T);
#if defined(__SSE2__)
  if (non_temporal &&
      (reinterpret_cast<uintptr_t>(dst) % kCacheLineSize) == 0) {
    const size_t chunks = bytes / 16;
    const __m128i* s = reinterpret_cast<const __m128i*>(src);
    __m128i* d = reinterpret_cast<__m128i*>(dst);
    for (size_t i = 0; i < chunks; ++i) {
      _mm_stream_si128(d + i, _mm_loadu_si128(s + i));
    }
    std::memcpy(reinterpret_cast<uint8_t*>(dst) + chunks * 16,
                reinterpret_cast<const uint8_t*>(src) + chunks * 16,
                bytes - chunks * 16);
    return;
  }
#endif
  std::memcpy(dst, src, bytes);
}

/// Stage one tuple in its partition's write buffer, flushing a full cache
/// line (streamed when aligned) or re-aligning a mid-line cursor. Shared
/// by the scalar and fused scatter paths.
template <typename T>
FPART_FORCE_INLINE void BufferedInsert(const T& tuple, uint32_t p,
                                       WriteBuffer<T>* buffers, uint8_t* fill,
                                       uint64_t* dst, T* out_base,
                                       bool non_temporal,
                                       SimdLevel flush_level =
                                           SimdLevel::kScalar) {
  constexpr int kK = TupleTraits<T>::kTuplesPerCacheLine;
  buffers[p].slots[fill[p]] = tuple;
  if (++fill[p] == kK) {
    const uint32_t misalign = static_cast<uint32_t>(dst[p] & (kK - 1));
    if (misalign != 0) {
      // Per-thread cursors start mid-line for every thread but the
      // first (the prefix sum hands each thread a tuple-granular
      // range). Write the head tuples plainly until the cursor reaches
      // a line boundary — once per (thread, partition) run — so every
      // subsequent full flush is aligned and streams.
      const uint32_t head = kK - misalign;
      std::memcpy(out_base + dst[p], buffers[p].slots, head * sizeof(T));
      std::memmove(buffers[p].slots, buffers[p].slots + head,
                   misalign * sizeof(T));
      dst[p] += head;
      fill[p] = static_cast<uint8_t>(misalign);
    } else {
      // A full line at an aligned cursor: stream it to its destination.
      FlushLine(out_base + dst[p], buffers[p].slots, non_temporal,
                flush_level);
      dst[p] += kK;
      fill[p] = 0;
    }
  }
}

/// Drain all partially filled buffers after the scatter loop.
template <typename T>
inline void DrainBuffers(const WriteBuffer<T>* buffers, const uint8_t* fill,
                         uint64_t* dst, T* out_base, uint32_t fanout,
                         bool non_temporal) {
  for (uint32_t p = 0; p < fanout; ++p) {
    if (fill[p] == 0) continue;
    DrainPartial(out_base + dst[p], buffers[p].slots, fill[p], non_temporal);
    dst[p] += fill[p];
  }
  StoreFence();
}

}  // namespace internal

/// Compute the partition histogram of `tuples[begin, end)`.
template <typename T>
void BuildHistogram(const PartitionFn& fn, const T* tuples, size_t begin,
                    size_t end, uint64_t* hist) {
  for (size_t i = begin; i < end; ++i) {
    uint32_t p;
    if constexpr (sizeof(tuples[i].key) == 4) {
      p = fn(tuples[i].key);
    } else {
      p = fn.Apply64(tuples[i].key);
    }
    ++hist[p];
  }
}

/// Scatter `tuples[begin, end)` into `out` using per-partition write
/// cursors `dst` (tuple indices into the global output buffer). The
/// cursors are advanced; with buffers enabled, tuples are staged in
/// cache-resident buffers and flushed one cache line at a time (Code 2).
template <typename T>
void Scatter(const PartitionFn& fn, const T* tuples, size_t begin, size_t end,
             uint64_t* dst, T* out_base, const CpuPartitionerConfig& config) {
  if (!config.use_buffers) {
    // Code 1: one random cache-line touch per tuple.
    for (size_t i = begin; i < end; ++i) {
      uint32_t p;
      if constexpr (sizeof(tuples[i].key) == 4) {
        p = fn(tuples[i].key);
      } else {
        p = fn.Apply64(tuples[i].key);
      }
      out_base[dst[p]++] = tuples[i];
    }
    return;
  }
  // Code 2: software-managed buffers, one cache line per partition. The
  // buffer block must stay L1-resident for peak performance (Section 3.1).
  std::vector<internal::WriteBuffer<T>> buffers(fn.fanout());
  std::vector<uint8_t> fill(fn.fanout(), 0);
  for (size_t i = begin; i < end; ++i) {
    uint32_t p;
    if constexpr (sizeof(tuples[i].key) == 4) {
      p = fn(tuples[i].key);
    } else {
      p = fn.Apply64(tuples[i].key);
    }
    internal::BufferedInsert(tuples[i], p, buffers.data(), fill.data(), dst,
                             out_base, config.non_temporal);
  }
  internal::DrainBuffers(buffers.data(), fill.data(), dst, out_base,
                         fn.fanout(), config.non_temporal);
}

/// Fused phase 1 of the fast path: compute each tuple's partition index
/// exactly once — batched through PartitionFn::ApplyBatch, which uses the
/// AVX2 kernels when available — store it in the shared index scratch
/// `idx` (globally indexed, like `tuples`), and count the histogram from
/// the already-computed indices. The scatter replays `idx` instead of
/// hashing again.
template <typename T, typename IndexT>
void FusedHistogram(const PartitionFn& fn, const T* tuples, size_t begin,
                    size_t end, uint64_t* hist, IndexT* idx) {
  using KeyType = decltype(T{}.key);
  // One batch of keys + indices stays L1-resident next to the counters.
  constexpr size_t kBatch = 1024;
  alignas(kCacheLineSize) KeyType keys[kBatch];
  alignas(kCacheLineSize) uint32_t pidx[kBatch];
#if defined(FPART_HAS_X86_SIMD_KERNELS)
  const SimdLevel level = ActiveSimdLevel();
  const bool avx512 = SimdLevelAtLeast(level, SimdLevel::kAvx512);
  const bool avx2 = SimdLevelAtLeast(level, SimdLevel::kAvx2);
#else
  constexpr bool avx512 = false;
  constexpr bool avx2 = false;
#endif
  (void)avx512;
  // Half-width chunk-local counters: 32 KB at fanout 8192 instead of the
  // 64 KB uint64 histogram block, leaving L1 room for the key/index batch.
  // Safe while a chunk holds < 2^32 tuples; folded into `hist` at the end.
  const uint32_t fanout = fn.fanout();
  const bool narrow_counts = end - begin < (uint64_t{1} << 32);
  std::vector<uint32_t> counts(narrow_counts ? fanout : 0, 0);
  bool streamed = false;
  for (size_t base = begin; base < end; base += kBatch) {
    const size_t m = std::min(kBatch, end - base);
    // Key extraction, vectorized for the key-first 8 B / 16 B tuple
    // layouts (strided scalar loads defeat the hardware prefetcher's
    // usefulness to the hash kernels otherwise).
    bool gathered = false;
#if defined(FPART_HAS_X86_SIMD_KERNELS)
    if constexpr (sizeof(T) == 8 && sizeof(KeyType) == 4) {
      static_assert(offsetof(T, key) == 0);
      if (avx512) {
        simd::GatherKeys32Stride8Avx512(
            tuples + base, reinterpret_cast<uint32_t*>(keys), m);
        gathered = true;
      } else if (avx2) {
        simd::GatherKeys32Stride8Avx2(
            tuples + base, reinterpret_cast<uint32_t*>(keys), m);
        gathered = true;
      }
    } else if constexpr (sizeof(T) == 16 && sizeof(KeyType) == 8) {
      static_assert(offsetof(T, key) == 0);
      if (avx512) {
        simd::GatherKeys64Stride16Avx512(
            tuples + base, reinterpret_cast<uint64_t*>(keys), m);
        gathered = true;
      } else if (avx2) {
        simd::GatherKeys64Stride16Avx2(
            tuples + base, reinterpret_cast<uint64_t*>(keys), m);
        gathered = true;
      }
    }
#endif
    if (!gathered) {
      for (size_t k = 0; k < m; ++k) keys[k] = tuples[base + k].key;
    }
    if constexpr (sizeof(KeyType) == 4) {
      fn.ApplyBatch(keys, pidx, m);
    } else {
      fn.ApplyBatch64(keys, pidx, m);
    }
    // Narrow the batch into the index scratch. The uint16_t scratch is
    // streamed past the cache: it is only read back after the prefix-sum
    // barrier, so caching it would just evict the counters.
    bool packed = false;
#if defined(FPART_HAS_X86_SIMD_KERNELS)
    if constexpr (sizeof(IndexT) == 2) {
      if (avx512) {
        simd::PackIndex16Avx512(pidx, reinterpret_cast<uint16_t*>(idx + base),
                                m);
        packed = true;
        streamed = true;
      } else if (avx2) {
        simd::PackIndex16Avx2(pidx, reinterpret_cast<uint16_t*>(idx + base),
                              m);
        packed = true;
        streamed = true;
      }
    }
#endif
    if (!packed) {
      for (size_t k = 0; k < m; ++k) {
        idx[base + k] = static_cast<IndexT>(pidx[k]);
      }
    }
    if (narrow_counts) {
      for (size_t k = 0; k < m; ++k) ++counts[pidx[k]];
    } else {
      for (size_t k = 0; k < m; ++k) ++hist[pidx[k]];
    }
  }
  if (narrow_counts) {
    for (uint32_t p = 0; p < fanout; ++p) hist[p] += counts[p];
  }
  if (streamed) internal::StoreFence();
}

/// Fused phase 2: scatter using the partition indices precomputed by
/// FusedHistogram — no second hash pass — and software-prefetch the
/// per-partition write-buffer line `prefetch_distance` tuples ahead (the
/// buffer block exceeds L1 at high fan-outs, so the insert's random
/// access would otherwise stall on L2). Handles both the Code 2 buffered
/// path and the Code 1 direct scatter.
template <typename T, typename IndexT>
void ScatterFused(const T* tuples, size_t begin, size_t end,
                  const IndexT* idx, uint32_t fanout, uint64_t* dst,
                  T* out_base, const CpuPartitionerConfig& config) {
  const size_t dist = config.prefetch_distance;
#if defined(FPART_HAS_X86_SIMD_KERNELS)
  const SimdLevel flush_level = ActiveSimdLevel();
#else
  constexpr SimdLevel flush_level = SimdLevel::kScalar;
#endif
  if (!config.use_buffers) {
    // Code 1, single-hash: prefetch the destination cursor's line ahead.
    if (dist == 0) {
      for (size_t i = begin; i < end; ++i) {
        out_base[dst[idx[i]]++] = tuples[i];
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        if (i + dist < end) {
          PrefetchForWrite(out_base + dst[idx[i + dist]]);
        }
        out_base[dst[idx[i]]++] = tuples[i];
      }
    }
    return;
  }
  std::vector<internal::WriteBuffer<T>> buffers(fanout);
  std::vector<uint8_t> fill(fanout, 0);
  // Specialized loops: the prefetch costs an extra index load per tuple,
  // so the disabled case must not pay even the test for it.
  if (dist == 0) {
    for (size_t i = begin; i < end; ++i) {
      internal::BufferedInsert(tuples[i], static_cast<uint32_t>(idx[i]),
                               buffers.data(), fill.data(), dst, out_base,
                               config.non_temporal, flush_level);
    }
  } else {
    for (size_t i = begin; i < end; ++i) {
      if (i + dist < end) {
        PrefetchForWrite(&buffers[idx[i + dist]]);
      }
      internal::BufferedInsert(tuples[i], static_cast<uint32_t>(idx[i]),
                               buffers.data(), fill.data(), dst, out_base,
                               config.non_temporal, flush_level);
    }
  }
  internal::DrainBuffers(buffers.data(), fill.data(), dst, out_base, fanout,
                         config.non_temporal);
}

/// \brief Single-pass parallel radix/hash partitioning.
///
/// Phase 1: per-thread histograms over disjoint chunks. Phase 2: exclusive
/// prefix sums give every (thread, partition) pair a private output range,
/// so the scatter needs no synchronization. This mirrors [3]; the histogram
/// exists *for* that synchronization — the FPGA needs none (Section 4.7).
template <typename T>
Result<CpuRunResult<T>> CpuPartition(const CpuPartitionerConfig& config,
                                     const T* tuples, size_t n) {
  constexpr int kK = TupleTraits<T>::kTuplesPerCacheLine;
  if (!IsPowerOfTwo(config.fanout)) {
    return Status::InvalidArgument("fanout must be a power of two");
  }
  if (config.hash == HashMethod::kRange &&
      config.range_splitters.size() + 1 != config.fanout) {
    return Status::InvalidArgument(
        "range partitioning needs exactly fanout-1 splitters");
  }
  auto cancelled = [&config] {
    return config.cancel != nullptr &&
           config.cancel->load(std::memory_order_relaxed);
  };
  if (cancelled()) {
    return Status::Cancelled("CPU partition cancelled before start");
  }
  const PartitionFn fn =
      config.hash == HashMethod::kRange
          ? PartitionFn::Range(config.range_splitters)
          : PartitionFn(config.hash, config.fanout, config.shift);
  const size_t num_threads = std::max<size_t>(1, config.num_threads);

  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = config.pool;
  if (pool == nullptr && num_threads > 1) {
    own_pool =
        std::make_unique<ThreadPool>(num_threads, "fpart-wkr", config.affinity);
    pool = own_pool.get();
  }

  auto chunk_begin = [&](size_t t) { return n * t / num_threads; };

  // Allocation is outside the timed region (pre-allocated outputs, as in
  // the baseline implementation).
  std::vector<std::vector<uint64_t>> hist(
      num_threads, std::vector<uint64_t>(config.fanout, 0));

  // Fused fast path: the partition index of every tuple is computed once
  // in phase 1 and replayed in phase 2 from this scratch. Indices are
  // uint16_t up to 64Ki partitions so the scratch streams at 2 B/tuple.
  // The buffer is allocated untouched and first-touched below by the same
  // per-thread chunks the phases use, so with pinned workers each page
  // lands on the NUMA node of the worker that will write and read it —
  // and the page faults stay out of the timed region either way.
  const bool fused = config.use_simd && n > 0;
  const bool narrow_idx = config.fanout <= (uint32_t{1} << 16);
  const size_t idx_elem = narrow_idx ? sizeof(uint16_t) : sizeof(uint32_t);
  AlignedBuffer idx_buf;
  uint16_t* idx16 = nullptr;
  uint32_t* idx32 = nullptr;
  if (fused) {
    AlignedBuffer::AllocateOptions idx_opts;
    idx_opts.zero = false;  // first-touched just below
    FPART_ASSIGN_OR_RETURN(idx_buf,
                           AlignedBuffer::AllocateWith(n * idx_elem, idx_opts));
    if (narrow_idx) {
      idx16 = idx_buf.mutable_data_as<uint16_t>();
    } else {
      idx32 = idx_buf.mutable_data_as<uint32_t>();
    }
    auto touch_chunk = [&](size_t t) {
      const size_t begin = chunk_begin(t), end = chunk_begin(t + 1);
      std::memset(idx_buf.data() + begin * idx_elem, 0,
                  (end - begin) * idx_elem);
    };
    if (num_threads == 1) {
      touch_chunk(0);
    } else {
      pool->ParallelFor(num_threads, touch_chunk);
    }
  }

  Timer timer;
  // --- Phase 1: histograms (fused path also records partition indices).
  auto histogram_chunk = [&](size_t t) {
    obs::HwPhaseScope hw("histogram");
    const size_t begin = chunk_begin(t), end = chunk_begin(t + 1);
    if (!fused) {
      BuildHistogram(fn, tuples, begin, end, hist[t].data());
    } else if (narrow_idx) {
      FusedHistogram(fn, tuples, begin, end, hist[t].data(), idx16);
    } else {
      FusedHistogram(fn, tuples, begin, end, hist[t].data(), idx32);
    }
  };
  double hist_seconds;
  {
    obs::TraceSpan span("cpu.partition.histogram", "cpu");
    if (num_threads == 1) {
      histogram_chunk(0);
    } else {
      pool->ParallelFor(num_threads, histogram_chunk);
    }
    hist_seconds = timer.Seconds();
  }
  if (cancelled()) {
    return Status::Cancelled("CPU partition cancelled after histogram phase");
  }

  // --- Prefix sums: partition bases (cache-line granular so partitions
  // start aligned) and per-thread cursors within each partition.
  std::vector<uint64_t> part_total(config.fanout, 0);
  for (uint32_t p = 0; p < config.fanout; ++p) {
    for (size_t t = 0; t < num_threads; ++t) part_total[p] += hist[t][p];
  }
  std::vector<uint32_t> capacity_cls(config.fanout);
  for (uint32_t p = 0; p < config.fanout; ++p) {
    capacity_cls[p] = static_cast<uint32_t>((part_total[p] + kK - 1) / kK);
  }
  FPART_ASSIGN_OR_RETURN(PartitionedOutput<T> output,
                         PartitionedOutput<T>::Allocate(capacity_cls));
  T* out_base = reinterpret_cast<T*>(output.line(0));
  std::vector<std::vector<uint64_t>> cursor(
      num_threads, std::vector<uint64_t>(config.fanout, 0));
  for (uint32_t p = 0; p < config.fanout; ++p) {
    uint64_t base = output.part(p).base_cl * kK;
    for (size_t t = 0; t < num_threads; ++t) {
      cursor[t][p] = base;
      base += hist[t][p];
    }
  }

  // --- Phase 2: synchronization-free scatter.
  Timer scatter_timer;
  auto scatter_chunk = [&](size_t t) {
    obs::HwPhaseScope hw("scatter");
    const size_t begin = chunk_begin(t), end = chunk_begin(t + 1);
    if (!fused) {
      Scatter(fn, tuples, begin, end, cursor[t].data(), out_base, config);
    } else if (narrow_idx) {
      ScatterFused(tuples, begin, end, idx16, config.fanout,
                   cursor[t].data(), out_base, config);
    } else {
      ScatterFused(tuples, begin, end, idx32, config.fanout,
                   cursor[t].data(), out_base, config);
    }
  };
  double scatter_seconds;
  {
    obs::TraceSpan span("cpu.partition.scatter", "cpu");
    if (num_threads == 1) {
      scatter_chunk(0);
    } else {
      pool->ParallelFor(num_threads, scatter_chunk);
    }
    scatter_seconds = scatter_timer.Seconds();
  }
  double seconds = hist_seconds + scatter_seconds;

  CpuRunResult<T> result;
  result.histogram_seconds = hist_seconds;
  result.scatter_seconds = scatter_seconds;
  for (uint32_t p = 0; p < config.fanout; ++p) {
    output.part(p).num_tuples = part_total[p];
    output.part(p).written_cls = capacity_cls[p];
    // Mark the unused slots of the partition's last cache line as dummies,
    // the same convention the FPGA flush uses (Section 4.2), so consumers
    // can treat both outputs identically.
    T* data = output.partition_data(p);
    for (uint64_t i = part_total[p];
         i < static_cast<uint64_t>(capacity_cls[p]) * kK; ++i) {
      data[i] = MakeDummyTuple<T>();
    }
  }
  result.output = std::move(output);
  result.histogram = std::move(part_total);
  result.seconds = seconds;
  result.mtuples_per_sec = seconds > 0 ? n / seconds / 1e6 : 0.0;

  // Publish the run to the metrics registry — after the timed phases, so
  // the hot loops above never see the instrumentation.
  {
    auto& reg = obs::Registry::Global();
    static obs::Counter* const runs = reg.GetCounter(
        "cpu.partition.runs", "runs", "CPU partitioning runs completed");
    static obs::Counter* const tuples_total = reg.GetCounter(
        "cpu.partition.tuples", "tuples", "tuples partitioned on the CPU");
    static obs::Histogram* const hist_us = reg.GetHistogram(
        "cpu.partition.histogram_us", "us",
        "histogram-phase wall time per run");
    static obs::Histogram* const scatter_us = reg.GetHistogram(
        "cpu.partition.scatter_us", "us",
        "scatter-phase wall time per run");
    runs->Add();
    tuples_total->Add(n);
    hist_us->Record(static_cast<uint64_t>(hist_seconds * 1e6));
    scatter_us->Record(static_cast<uint64_t>(scatter_seconds * 1e6));
  }
  return result;
}

}  // namespace fpart
