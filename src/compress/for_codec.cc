#include "compress/for_codec.h"

#include <algorithm>
#include <cstring>

namespace fpart {
namespace {

int BitsFor(uint32_t max_delta) {
  // Guard the shift: x >> 32 is undefined for uint32_t (and a no-op on
  // x86, which would loop forever on full-range deltas).
  int bits = 0;
  while (bits < 32 && (max_delta >> bits) != 0) ++bits;
  return bits;
}

/// Largest prefix of keys[0..limit) that fits one frame, with its
/// base/bits. Greedy: extend while count × bits(count) still fits.
struct FramePlan {
  int count;
  uint32_t base;
  int bits;
};

FramePlan PlanFrame(const uint32_t* keys, size_t remaining) {
  const int limit =
      static_cast<int>(std::min<size_t>(remaining, kMaxKeysPerFrame));
  uint32_t lo = keys[0], hi = keys[0];
  FramePlan best{1, keys[0], 0};
  for (int count = 1; count <= limit; ++count) {
    lo = std::min(lo, keys[count - 1]);
    hi = std::max(hi, keys[count - 1]);
    int bits = BitsFor(hi - lo);
    if (count * bits <= kFramePayloadBits) {
      best = FramePlan{count, lo, bits};
    } else if (bits >= 32) {
      break;  // wider prefixes can only need more bits
    }
  }
  return best;
}

void PackBits(uint8_t* payload, int index, int bits, uint32_t value) {
  int bit_pos = index * bits;
  for (int b = 0; b < bits; ++b, ++bit_pos) {
    if (value & (1u << b)) {
      payload[bit_pos >> 3] |= static_cast<uint8_t>(1u << (bit_pos & 7));
    }
  }
}

uint32_t UnpackBits(const uint8_t* payload, int index, int bits) {
  uint32_t value = 0;
  int bit_pos = index * bits;
  for (int b = 0; b < bits; ++b, ++bit_pos) {
    if (payload[bit_pos >> 3] & (1u << (bit_pos & 7))) {
      value |= 1u << b;
    }
  }
  return value;
}

}  // namespace

Result<CompressedColumn> CompressedColumn::Compress(const uint32_t* keys,
                                                    size_t n) {
  CompressedColumn column;
  column.num_keys_ = n;
  if (n == 0) return column;

  // Two passes: plan the frames, then allocate exactly and fill.
  std::vector<FramePlan> plans;
  size_t pos = 0;
  while (pos < n) {
    FramePlan plan = PlanFrame(keys + pos, n - pos);
    plans.push_back(plan);
    pos += plan.count;
  }
  FPART_ASSIGN_OR_RETURN(
      column.buffer_,
      AlignedBuffer::Allocate(plans.size() * kCacheLineSize));
  column.frame_offsets_.reserve(plans.size());

  pos = 0;
  uint8_t* out = column.buffer_.data();
  for (const FramePlan& plan : plans) {
    column.frame_offsets_.push_back(pos);
    std::memcpy(out, &plan.base, 4);
    out[4] = static_cast<uint8_t>(plan.bits);
    out[5] = static_cast<uint8_t>(plan.count);
    for (int i = 0; i < plan.count; ++i) {
      PackBits(out + 6, i, plan.bits, keys[pos + i] - plan.base);
    }
    pos += plan.count;
    out += kCacheLineSize;
  }
  return column;
}

int CompressedColumn::DecodeFrame(size_t i, uint32_t* out) const {
  const uint8_t* f = frame(i);
  uint32_t base;
  std::memcpy(&base, f, 4);
  const int bits = f[4];
  const int count = f[5];
  for (int k = 0; k < count; ++k) {
    out[k] = base + UnpackBits(f + 6, k, bits);
  }
  return count;
}

std::vector<uint32_t> CompressedColumn::DecompressAll() const {
  std::vector<uint32_t> keys;
  keys.reserve(num_keys_);
  uint32_t scratch[kMaxKeysPerFrame];
  for (size_t i = 0; i < num_frames(); ++i) {
    int count = DecodeFrame(i, scratch);
    keys.insert(keys.end(), scratch, scratch + count);
  }
  return keys;
}

}  // namespace fpart
