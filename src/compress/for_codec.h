// Frame-of-reference (FOR) bit-packed compression of 32-bit key columns.
//
// Section 6 of the paper: "when processing compressed columns (a de facto
// standard for analytical workloads), decompression ... can be done for
// free on the FPGA as the first step of a processing pipeline". This codec
// provides the compressed representation for that pipeline: fixed 64 B
// frames (one QPI cache line each) holding a base value plus bit-packed
// deltas, decodable by a fixed-function circuit at one frame per cycle.
//
// Frame layout (64 bytes):
//   [0..3]   uint32 base      — minimum key of the frame
//   [4]      uint8  bits      — delta width in bits (0..32)
//   [5]      uint8  count     — keys in this frame (1..kMaxKeysPerFrame)
//   [6..63]  packed little-endian deltas, count × bits bits
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"

namespace fpart {

/// Payload capacity of a frame in bits.
inline constexpr int kFramePayloadBits = 58 * 8;
/// Upper bound on keys per frame (bits == 0, all keys equal the base).
inline constexpr int kMaxKeysPerFrame = 120;

/// \brief A compressed key column: contiguous 64 B frames plus metadata.
class CompressedColumn {
 public:
  CompressedColumn() = default;

  size_t num_frames() const { return frame_offsets_.size(); }
  size_t num_keys() const { return num_keys_; }
  const uint8_t* frame(size_t i) const {
    return buffer_.data() + i * kCacheLineSize;
  }
  /// Index of the first key stored in frame i.
  uint64_t frame_offset(size_t i) const { return frame_offsets_[i]; }

  /// Compression ratio: uncompressed key bytes / compressed bytes.
  double ratio() const {
    return num_frames() == 0
               ? 1.0
               : static_cast<double>(num_keys_ * sizeof(uint32_t)) /
                     (num_frames() * kCacheLineSize);
  }

  /// Compress a key column. Greedy: each frame takes the longest prefix of
  /// the remaining keys whose deltas (to the frame minimum) still fit.
  static Result<CompressedColumn> Compress(const uint32_t* keys, size_t n);

  /// Decode frame i into `out` (capacity >= kMaxKeysPerFrame); returns the
  /// number of keys produced. This is the software model of the FPGA's
  /// unpack circuit.
  int DecodeFrame(size_t i, uint32_t* out) const;

  /// Decode the whole column (CPU baseline path).
  std::vector<uint32_t> DecompressAll() const;

 private:
  AlignedBuffer buffer_;
  std::vector<uint64_t> frame_offsets_;
  size_t num_keys_ = 0;
};

}  // namespace fpart
