// Analytical execution path of the circuit simulator (SimMode::kAnalytical).
//
// The analytical backend splits one simulated run into the two concerns the
// cycle engines interleave:
//
//  * Timing is *predicted*, not simulated: per-pass cycle and stall counts
//    come from the paper's Section 4.8 cost model and B(r) curve
//    (FpgaCostModel::PredictPassCycles), applied per pass with that pass's
//    actual read/write line mix. The CycleStats a run reports are therefore
//    model outputs; the sampled cross-check harness in fpga/partitioner.h
//    measures their error against SimMode::kFast.
//
//  * Placement is *replayed*, not predicted. Output bytes must stay
//    bit-identical to the cycle engines, and experiment shows the write
//    combiners' line interleaving genuinely depends on QPI grant timing
//    (throttled and unthrottled links place intra-partition lines in
//    different orders), so there is no order-free shortcut: the replay
//    advances the shared QpiLink token bucket cycle by cycle and reproduces
//    the exact gating graph of FastCircuit — feed back-pressure, the
//    lane-FIFO/output-FIFO reservations, the 3-cycle completion-to-publish
//    latency and the round-robin write-back. What it drops is everything
//    with no placement consequence: per-cycle stage-register shuffling, the
//    fill-rate forwarding mechanics (per (lane, partition) every K-th tuple
//    completes a line — the bank contents are invariant in pop order), and
//    all stall accounting. The HIST histogram pass needs no placement at
//    all, so it collapses further: a flat functional histogram over the
//    InputStager group stream plus a counter-only link replay that
//    reproduces pass 1's read-grant pattern (the link's token and
//    recalibration-window state carries into pass 2 and shifts placement
//    there).
//
// The differential matrix in tests/sim_analytical_test.cc asserts output
// bytes, partition metadata and abort behaviour identical to the other two
// engines, and bounds the predicted-cycle error.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/status.h"
#include "datagen/partitioned_output.h"
#include "datagen/tuple.h"
#include "fpga/config.h"
#include "fpga/hash_lane.h"
#include "fpga/staging.h"
#include "fpga/write_combiner.h"
#include "hash/hash_function.h"
#include "model/cost_model.h"
#include "qpi/qpi_link.h"
#include "sim/stats.h"

namespace fpart {

/// \brief Model-timed, placement-exact implementation of one simulator pass.
///
/// One instance executes exactly one pass, like the other engines.
template <typename T>
class AnalyticalCircuit {
 public:
  static constexpr int K = TupleTraits<T>::kTuplesPerCacheLine;

  AnalyticalCircuit(const FpgaPartitionerConfig& config, const PartitionFn& fn,
                    HazardPolicy hazard, const InputStager<T>& stager)
      : fn_(fn),
        hazard_(hazard),
        stager_(stager),
        fanout_(config.fanout),
        link_kind_(config.link),
        interference_(config.interference),
        lat_(config.hash_latency() < 1 ? 1u
                                       : static_cast<uint32_t>(
                                             config.hash_latency())),
        in_depth_(config.lane_fifo_depth),
        out_depth_(config.output_fifo_depth),
        groups_per_read_(stager.GroupsPerRead()),
        direct_(stager.SupportsDirectGroups()),
        arrival_mask_(lat_, 0),
        ring_(static_cast<size_t>(K) * in_depth_) {}

  /// HIST pass 1: the histogram is a pure function of the group stream, so
  /// it is computed flat; the cycle loop only replays the link interaction.
  /// In pass 1 the sink pops every visible tuple each cycle, so lane
  /// occupancy never exceeds lat_ + 1 (< lane_fifo_depth by Validate) and
  /// feeds are gated by staging occupancy alone; each group drains exactly
  /// lat_ + 1 cycles after its feed cycle.
  Status HistogramPass(size_t n, uint64_t max_cycles, QpiLink* link,
                       CycleStats* stats,
                       std::vector<std::vector<uint64_t>>* lane_hist) {
    lane_hist->assign(K, std::vector<uint64_t>(fanout_, 0));
    const size_t total_reads = stager_.TotalReads(n);
    if (direct_) {
      const size_t groups = (n + K - 1) / K;
      T tmp[K];
      for (size_t g = 0; g < groups; ++g) {
        const uint32_t cnt = stager_.FillGroup(n, g, tmp);
        for (uint32_t k = 0; k < cnt; ++k) {
          ++(*lane_hist)[k][HashOf(tmp[k])];
        }
      }
    }
    uint64_t cycles = 0;
    size_t reads_done = 0;
    size_t staged = 0;
    uint64_t fed = 0, groups_fed = 0, last_feed = 0;
    // Compressed frames produce irregular group counts; the histogram is
    // accumulated at decode time and only the counts stay queued.
    std::deque<uint8_t> counts;
    while (fed < n || (groups_fed > 0 && cycles < last_feed + lat_ + 1)) {
      if (cycles++ > max_cycles) {
        return Status::Internal("histogram pass exceeded cycle budget");
      }
      link->Tick();
      // FeedCycle, control only (same intra-cycle order as the engines:
      // read issue against pre-feed occupancy, then one group fed).
      const size_t occupancy = direct_ ? staged : counts.size();
      if (reads_done < total_reads && occupancy < 2 * groups_per_read_) {
        if (link->TryRead()) {
          if (direct_) {
            staged += stager_.GroupsOfRead(n, reads_done);
          } else {
            DecodeFrameForHistogram(n, reads_done, lane_hist, &counts);
          }
          ++reads_done;
        }
      }
      const bool have_group = direct_ ? staged > 0 : !counts.empty();
      if (have_group) {
        uint32_t cnt;
        if (direct_) {
          --staged;
          cnt = static_cast<uint32_t>(
              std::min<size_t>(K, n - static_cast<size_t>(fed)));
        } else {
          cnt = counts.front();
          counts.pop_front();
        }
        fed += cnt;
        ++groups_fed;
        last_feed = cycles;
      }
    }

    stats->read_lines += total_reads;
    stats->input_lines += groups_fed;
    const uint64_t circuit = groups_fed == 0 ? 0 : groups_fed + lat_ + 1;
    const FpgaCostModel::PassPrediction pred =
        FpgaCostModel::PredictPassCycles(circuit, total_reads, 0, link_kind_,
                                         interference_);
    stats->cycles += pred.cycles;
    stats->read_stall_cycles += pred.read_stall_cycles;
    stats->write_stall_cycles += pred.write_stall_cycles;
    stats->backpressure_cycles +=
        pred.read_stall_cycles + pred.write_stall_cycles;
    return Status::OK();
  }

  /// The writing pass: placement replay with modelled timing (see the file
  /// comment). Structure mirrors FastCircuit::PartitionPass — streaming
  /// loop, flush scan, drain — with identical per-cycle gating.
  Status PartitionPass(size_t n, uint64_t max_cycles, QpiLink* link,
                       CycleStats* stats, PartitionedOutput<T>* output) {
    fill_.assign(static_cast<size_t>(K) * fanout_, 0);
    banks_.assign(static_cast<size_t>(K) * K * fanout_, T{});
    out_line_.assign(static_cast<size_t>(K) * out_depth_, CombinedLine<T>{});
    const size_t total_reads = stager_.TotalReads(n);
    uint64_t cycles = 0;

    while (PartitionBusy(n)) {
      const uint64_t w = fed_ < n ? (n - fed_ + K - 1) / K : 1;
      for (uint64_t i = 0; i < w; ++i) {
        if (cycles++ > max_cycles) {
          return Status::Internal("partition pass exceeded cycle budget");
        }
        link->Tick();
        WriteBackTick(link, output);
        if (overflowed_) return OverflowStatus();
        CombinerTick(cycles);
        FeedCycle(n, total_reads, link);
      }
    }
    const uint64_t stream_writes = lines_written_;

    // --- Flush scan + drain (all publishes are past by now: the busy
    // predicate covers the pending-publish queue).
    for (int c = 0; c < K; ++c) {
      uint32_t p = 0;
      while (p < fanout_) {
        if (cycles++ > max_cycles) {
          return Status::Internal("flush exceeded cycle budget");
        }
        link->Tick();
        WriteBackTick(link, output);
        if (overflowed_) return OverflowStatus();
        if (lanes_[c].out_count < out_depth_) {
          FlushPartition(c, p);
          ++p;
        }
      }
    }
    while (wb_valid_ || AnyOutputPending()) {
      if (cycles++ > max_cycles) {
        return Status::Internal("drain exceeded cycle budget");
      }
      link->Tick();
      WriteBackTick(link, output);
      if (overflowed_) return OverflowStatus();
    }

    // Exact functional counters.
    uint64_t max_lane_stall = 0;
    for (int c = 0; c < K; ++c) {
      stats->internal_stall_cycles += lanes_[c].stall_cycles;
      if (lanes_[c].stall_cycles > max_lane_stall) {
        max_lane_stall = lanes_[c].stall_cycles;
      }
    }
    stats->read_lines += total_reads;
    stats->input_lines += groups_fed_;
    stats->output_lines += lines_written_;
    stats->dummy_tuples += dummy_tuples_;

    // Modelled timing: the streaming phase moves total_reads read lines
    // against stream_writes write lines over a circuit needing one cycle
    // per group plus pipeline latency — plus, under the stalling hazard
    // policy, the serialization of the slowest lane (pops stall in
    // parallel, so the binding term is the per-lane maximum, which the
    // replay counts exactly); the flush phase scans K * fanout BRAM
    // addresses (the c_writecomb term of Table 3) while writing the
    // remaining partial lines against the write-heavy end of the B(r)
    // curve.
    const uint64_t circuit_stream =
        groups_fed_ == 0 ? 0 : groups_fed_ + lat_ + 6 + max_lane_stall;
    const FpgaCostModel::PassPrediction stream_pred =
        FpgaCostModel::PredictPassCycles(circuit_stream, total_reads,
                                         stream_writes, link_kind_,
                                         interference_);
    const uint64_t flush_lines = lines_written_ - stream_writes;
    const FpgaCostModel::PassPrediction flush_pred =
        FpgaCostModel::PredictPassCycles(
            static_cast<uint64_t>(K) * fanout_ + 8, 0, flush_lines,
            link_kind_, interference_);
    stats->cycles += stream_pred.cycles + flush_pred.cycles;
    stats->flush_cycles += flush_pred.cycles;
    stats->read_stall_cycles += stream_pred.read_stall_cycles;
    stats->write_stall_cycles +=
        stream_pred.write_stall_cycles + flush_pred.write_stall_cycles;
    stats->backpressure_cycles += stream_pred.read_stall_cycles +
                                  stream_pred.write_stall_cycles +
                                  flush_pred.write_stall_cycles;
    return Status::OK();
  }

 private:
  /// Per-lane replay state: the merged delay-line/FIFO ring cursors (as in
  /// FastCircuit), the two-deep pop history (hazard checks + in-flight
  /// output-slot reservations), and the completion-to-publish delay queue.
  struct alignas(64) Lane {
    uint32_t head = 0;
    uint32_t count = 0;
    uint32_t inflight = 0;
    // Pops of the last two cycles (partition + valid), shifted every cycle.
    uint8_t s1_v = 0, s2_v = 0;
    uint32_t s1_h = 0, s2_h = 0;
    // Lines completed at pop time but not yet published to the output FIFO
    // (publish lands pop + 3 cycles later, write-back sees it at pop + 4 —
    // the stage-2/3 latency of the cycle engines). At most 3 in flight.
    uint8_t npend = 0, pend_head = 0;
    uint64_t pend_cycle[4] = {};
    uint32_t out_head = 0, out_count = 0;
    uint64_t stall_cycles = 0;
  };

  uint32_t HashOf(const T& t) const {
    if constexpr (sizeof(t.key) == 4) {
      return fn_(t.key);
    } else {
      return fn_.Apply64(t.key);
    }
  }

  void DecodeFrameForHistogram(size_t n, size_t read_idx,
                               std::vector<std::vector<uint64_t>>* lane_hist,
                               std::deque<uint8_t>* counts) {
    scratch_.clear();
    stager_.MaterializeGroups(n, read_idx, &scratch_);
    for (const TupleGroup<T>& g : scratch_) {
      for (int k = 0; k < g.count; ++k) {
        ++(*lane_hist)[k][HashOf(g.tuples[k])];
      }
      counts->push_back(g.count);
    }
  }

  /// Identical to FastCircuit::FeedCycle minus the stall/line accounting.
  void FeedCycle(size_t n, size_t total_reads, QpiLink* link) {
    const size_t occupancy = direct_ ? staged_ : staging_.size();
    if (reads_done_ < total_reads && occupancy < 2 * groups_per_read_) {
      if (link->TryRead()) {
        if (direct_) {
          staged_ += stager_.GroupsOfRead(n, reads_done_);
        } else {
          stager_.MaterializeGroups(n, reads_done_, &staging_);
        }
        ++reads_done_;
      }
    }
    uint32_t arrived = arrival_mask_[pipe_pos_];
    if (arrived) {
      arrival_mask_[pipe_pos_] = 0;
      for (int c = 0; arrived; ++c, arrived >>= 1) {
        ++lanes_[c].count;
        --lanes_[c].inflight;
      }
    }
    const bool have_group = direct_ ? staged_ > 0 : !staging_.empty();
    if (have_group && full_lanes_ == 0) {
      if (direct_) {
        T tmp[K];
        const uint32_t cnt = stager_.FillGroup(n, next_group_, tmp);
        for (uint32_t c = 0; c < cnt; ++c) {
          Lane& l = lanes_[c];
          uint32_t pos = l.head + l.count + l.inflight;
          if (pos >= in_depth_) pos -= in_depth_;
          const T& t = tmp[c];
          ring_[c * in_depth_ + pos] = HashedTuple<T>{HashOf(t), t};
          if (l.count + ++l.inflight == in_depth_) ++full_lanes_;
        }
        arrival_mask_[pipe_pos_] = (1u << cnt) - 1;
        fed_ += cnt;
        --staged_;
        ++next_group_;
      } else {
        const TupleGroup<T>& group = staging_.front();
        for (int c = 0; c < group.count; ++c) {
          Lane& l = lanes_[c];
          uint32_t pos = l.head + l.count + l.inflight;
          if (pos >= in_depth_) pos -= in_depth_;
          const T& t = group.tuples[c];
          ring_[c * in_depth_ + pos] = HashedTuple<T>{HashOf(t), t};
          if (l.count + ++l.inflight == in_depth_) ++full_lanes_;
        }
        arrival_mask_[pipe_pos_] = (1u << group.count) - 1;
        fed_ += group.count;
        staging_.pop_front();
      }
      ++groups_fed_;
    }
    pipe_pos_ = pipe_pos_ + 1 == lat_ ? 0 : pipe_pos_ + 1;
  }

  T* BanksOf(int c, uint32_t p) {
    return &banks_[(static_cast<size_t>(c) * fanout_ + p) * K];
  }

  /// The lean combiner clock: publish a due line, then pop under the exact
  /// FastCircuit gate, appending straight into the bank and capturing a
  /// completed line at pop time (contents are invariant in pop order; only
  /// the publish instant needs the 3-cycle delay queue).
  void CombinerTick(uint64_t cycle) {
    for (int c = 0; c < K; ++c) {
      Lane& l = lanes_[c];
      if (l.count == 0 && (l.s1_v | l.s2_v | l.npend) == 0) continue;
      // Stage 3: the line completed three cycles ago goes downstream.
      if (l.npend != 0 && l.pend_cycle[l.pend_head] == cycle) {
        if (l.out_count == 0) out_mask_ |= 1u << c;
        ++l.out_count;
        l.pend_head = (l.pend_head + 1) & 3;
        --l.npend;
      }
      // Stage 0: pop when a tuple is visible and the output FIFO can
      // absorb every in-flight line.
      uint8_t in_v = 0;
      uint32_t in_h = 0;
      const uint32_t inflight_lines =
          static_cast<uint32_t>(l.s1_v) + static_cast<uint32_t>(l.s2_v);
      if (l.count > 0 && out_depth_ - l.out_count > inflight_lines) {
        const HashedTuple<T>& front = ring_[c * in_depth_ + l.head];
        if (hazard_ == HazardPolicy::kStall &&
            ((l.s1_v && l.s1_h == front.hash) ||
             (l.s2_v && l.s2_h == front.hash))) {
          ++l.stall_cycles;
        } else {
          in_v = 1;
          in_h = front.hash;
          uint8_t* fill = &fill_[static_cast<size_t>(c) * fanout_];
          T* bank = BanksOf(c, in_h);
          const uint8_t f = fill[in_h];
          bank[f] = front.tuple;
          if (f + 1 == K) {
            fill[in_h] = 0;
            uint32_t pos = l.out_head + l.out_count + l.npend;
            if (pos >= out_depth_) pos -= out_depth_;
            CombinedLine<T>& line = out_line_[c * out_depth_ + pos];
            line.partition = in_h;
            line.valid_count = K;
            for (int b = 0; b < K; ++b) line.tuples[b] = bank[b];
            l.pend_cycle[(l.pend_head + l.npend) & 3] = cycle + 3;
            ++l.npend;
          } else {
            fill[in_h] = static_cast<uint8_t>(f + 1);
          }
          l.head = l.head + 1 == in_depth_ ? 0 : l.head + 1;
          if (l.count + l.inflight == in_depth_) --full_lanes_;
          --l.count;
        }
      }
      l.s2_v = l.s1_v;
      l.s2_h = l.s1_h;
      l.s1_v = in_v;
      l.s1_h = in_h;
    }
  }

  void FlushPartition(int c, uint32_t p) {
    uint8_t* fill = &fill_[static_cast<size_t>(c) * fanout_];
    const uint8_t count = fill[p];
    if (count == 0) return;
    const T* bank = BanksOf(c, p);
    Lane& l = lanes_[c];
    uint32_t pos = l.out_head + l.out_count;
    if (pos >= out_depth_) pos -= out_depth_;
    CombinedLine<T>& line = out_line_[c * out_depth_ + pos];
    line.partition = p;
    line.valid_count = count;
    for (int b = 0; b < K; ++b) {
      line.tuples[b] = b < count ? bank[b] : MakeDummyTuple<T>();
    }
    fill[p] = 0;
    if (l.out_count == 0) out_mask_ |= 1u << c;
    ++l.out_count;
  }

  /// Identical to FastCircuit::WriteBackTick minus the stall accounting
  /// (lines_written_ / dummy_tuples_ stay exact).
  void WriteBackTick(QpiLink* link, PartitionedOutput<T>* out) {
    if (!wb_valid_ && !overflowed_ && out_mask_ != 0) {
      const uint32_t full = (1u << K) - 1;
      const uint32_t rot =
          ((out_mask_ >> rr_cursor_) | (out_mask_ << (K - rr_cursor_))) & full;
      const size_t idx =
          (rr_cursor_ + static_cast<size_t>(__builtin_ctz(rot))) & (K - 1);
      Lane& l = lanes_[idx];
      wb_line_ = out_line_[idx * out_depth_ + l.out_head];
      l.out_head = l.out_head + 1 == out_depth_ ? 0 : l.out_head + 1;
      if (--l.out_count == 0) out_mask_ &= ~(1u << idx);
      rr_cursor_ = idx + 1 == static_cast<size_t>(K) ? 0 : idx + 1;
      PartitionInfo& part = out->part(wb_line_.partition);
      if (part.written_cls >= part.capacity_cls) {
        overflowed_ = true;
        overflow_partition_ = wb_line_.partition;
        return;
      }
      wb_dest_ = part.base_cl + part.written_cls;
      ++part.written_cls;
      part.num_tuples += wb_line_.valid_count;
      wb_valid_ = true;
    }
    if (wb_valid_ && link->TryWrite()) {
      uint8_t* dst = out->line(wb_dest_);
#if defined(__SSE2__)
      // Same rationale as FastCircuit: the output buffer dwarfs cache and
      // every line is written exactly once, so streaming stores skip the
      // read-for-ownership of the aligned destination lines.
      const uint8_t* src =
          reinterpret_cast<const uint8_t*>(wb_line_.tuples.data());
      for (int b = 0; b < static_cast<int>(kCacheLineSize / 16); ++b) {
        _mm_stream_si128(
            reinterpret_cast<__m128i*>(dst + 16 * b),
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 16 * b)));
      }
#else
      std::memcpy(dst, wb_line_.tuples.data(), kCacheLineSize);
#endif
      ++lines_written_;
      dummy_tuples_ += CombinedLine<T>::kTuples - wb_line_.valid_count;
      wb_valid_ = false;
    }
  }

  bool PartitionBusy(size_t n) const {
    if (fed_ < n || wb_valid_) return true;
    for (int c = 0; c < K; ++c) {
      const Lane& l = lanes_[c];
      if (l.count != 0 || l.inflight != 0) return true;
      if (l.s1_v || l.s2_v || l.npend != 0) return true;
      if (l.out_count != 0) return true;
    }
    return false;
  }

  bool AnyOutputPending() const {
    for (int c = 0; c < K; ++c) {
      if (lanes_[c].out_count != 0) return true;
    }
    return false;
  }

  Status OverflowStatus() const {
    return Status::PartitionOverflow(
        "PAD-mode partition " + std::to_string(overflow_partition_) +
        " overflowed; retry in HIST mode or fall back to the CPU "
        "partitioner (Section 4.5)");
  }

  const PartitionFn fn_;
  const HazardPolicy hazard_;
  const InputStager<T>& stager_;
  const uint32_t fanout_;
  const LinkKind link_kind_;
  const Interference interference_;
  const uint32_t lat_;
  const uint32_t in_depth_;
  const uint32_t out_depth_;
  const size_t groups_per_read_;
  const bool direct_;

  std::array<Lane, K> lanes_{};
  std::vector<uint32_t> arrival_mask_;
  uint32_t pipe_pos_ = 0;
  uint32_t full_lanes_ = 0;
  std::vector<HashedTuple<T>> ring_;

  std::vector<uint8_t> fill_;
  std::vector<T> banks_;
  std::vector<CombinedLine<T>> out_line_;

  CombinedLine<T> wb_line_{};
  bool wb_valid_ = false;
  uint64_t wb_dest_ = 0;
  size_t rr_cursor_ = 0;
  uint32_t out_mask_ = 0;
  bool overflowed_ = false;
  uint32_t overflow_partition_ = 0;

  std::deque<TupleGroup<T>> staging_;
  std::deque<TupleGroup<T>> scratch_;
  size_t staged_ = 0;
  size_t next_group_ = 0;
  size_t reads_done_ = 0;
  uint64_t fed_ = 0;
  uint64_t groups_fed_ = 0;
  uint64_t lines_written_ = 0;
  uint64_t dummy_tuples_ = 0;
};

}  // namespace fpart
