// Configuration of the FPGA partitioner (Sections 4.1–4.5).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "hash/hash_function.h"
#include "qpi/bandwidth_model.h"

namespace fpart {

/// How the output is formatted (Section 4.5, parameter 1).
enum class OutputMode {
  /// Two passes: build a histogram first, then write with an exact prefix
  /// sum. Minimal intermediate memory; robust against skew.
  kHist,
  /// One pass into fixed-size pre-padded partitions. Aborts with
  /// Status::PartitionOverflow if a partition fills up (heavy skew).
  kPad,
};

/// Input layout (Section 4.5, parameter 2; kCompressed extends it with the
/// Section 6 compressed-column pipeline).
enum class LayoutMode {
  /// Row store: tuples are materialized <key, payload> in memory.
  kRid,
  /// Column store: only the key array is read; the FPGA appends a virtual
  /// record id, halving the bytes read over QPI.
  kVrid,
  /// Column store with FOR bit-packed keys: the circuit decompresses each
  /// 64 B frame as the first pipeline step (free, like hashing) and
  /// appends virtual record ids. Reads shrink by the compression ratio.
  kCompressed,
};

/// Which link the circuit talks to.
enum class LinkKind {
  /// The Xeon+FPGA QPI end-point, throttled by the Figure 2 curve.
  kXeonFpga,
  /// The internal raw wrapper of Section 4.7: 25.6 GB/s combined.
  kRawWrapper,
};

/// Which host-side execution engine advances the simulated circuit.
/// All engines produce bit-identical output bytes (asserted by
/// tests/sim_fastpath_test.cc and tests/sim_analytical_test.cc); the first
/// two also produce identical CycleStats, while kAnalytical *predicts* its
/// timing counters from the Section 4.8 cost model.
enum class SimMode {
  /// Per-module Tick() loop, the clearest transcription of the VHDL.
  kReference,
  /// Flat ring-buffer engine advancing steady-state windows in batched
  /// inner loops (see src/fpga/fast_engine.h). Several times faster on
  /// the host; cycle counts stay exact.
  kFast,
  /// Functional stream + lean placement replay (see
  /// src/fpga/analytical_engine.h): outputs stay bit-identical, but
  /// cycle/stall counters are predicted by the closed-form cost model in
  /// src/model/cost_model.h instead of simulated cycle by cycle. Fastest;
  /// pair with FpgaPartitionerConfig::xcheck to bound the model error.
  kAnalytical,
};

const char* OutputModeName(OutputMode mode);
const char* LayoutModeName(LayoutMode mode);
const char* SimModeName(SimMode mode);
/// Parse "reference" / "fast" / "analytical" (the SimModeName spellings).
/// Returns false and leaves *mode untouched on any other string, so flag
/// parsers accept and reject mode names symmetrically.
bool ParseSimMode(const std::string& name, SimMode* mode);

/// \brief Knobs of the partitioner circuit.
struct FpgaPartitionerConfig {
  /// Number of partitions; must be a power of two, at most kMaxFanout.
  uint32_t fanout = 8192;
  OutputMode output_mode = OutputMode::kPad;
  LayoutMode layout = LayoutMode::kRid;
  /// Murmur hashing or raw radix bits (Code 3). On the FPGA both sustain
  /// one tuple per clock; only the pipeline latency differs. kRange uses a
  /// pipelined comparator tree over `range_splitters` (Wu et al. [41]).
  HashMethod hash = HashMethod::kMurmur;
  /// kRange only: fanout-1 sorted splitters (see EquiDepthSplitters).
  std::vector<uint64_t> range_splitters;
  /// PAD mode: per-partition capacity = #Tuples/#Partitions * (1 + padding).
  double pad_fraction = 0.5;
  LinkKind link = LinkKind::kXeonFpga;
  /// Model concurrent CPU traffic (the interfered curves of Figure 2).
  Interference interference = Interference::kAlone;
  /// Host execution engine. kFast is the default; kReference remains the
  /// executable specification the fast engine is differentially tested
  /// against.
  SimMode sim_mode = SimMode::kFast;
  /// Memoize full run results keyed by (config digest, input digest,
  /// sim_mode) in the process-wide SimResultCache, so repeated job shapes
  /// never re-simulate (src/fpga/sim_cache.h). A hit returns a deep copy
  /// of the cached output and its CycleStats.
  bool sim_cache = false;
  /// kAnalytical only: fraction of runs (deterministically sampled by
  /// input digest) re-executed on kFast to cross-check that outputs are
  /// byte-identical and the predicted cycle count is within
  /// xcheck_tolerance. A failed cross-check returns Status::Internal.
  double xcheck = 0.0;
  /// Maximum tolerated relative cycle error |analytical - fast| / fast of
  /// a sampled cross-check (the bound DESIGN.md states for the model).
  double xcheck_tolerance = 0.15;
  /// Export this run's counters to the obs metrics registry. Internal
  /// runs (cross-check re-executions) clear it so sim.* totals keep
  /// counting each job once.
  bool publish_metrics = true;

  /// Cooperative cancellation token (svc job cancellation / FPGA lease
  /// revocation). Checked at simulation pass boundaries only, so a pass in
  /// flight always completes before the run aborts with Status::Cancelled.
  /// Not owned; may be null.
  const std::atomic<bool>* cancel = nullptr;

  /// Depth of the per-lane FIFO between hash module and write combiner.
  /// Read requests are issued only when every lane FIFO has room for the
  /// hash pipeline's in-flight tuples plus one (Section 4.3 back-pressure).
  uint32_t lane_fifo_depth = 16;
  /// Depth of each write combiner's output FIFO.
  uint32_t output_fifo_depth = 8;

  /// The largest fan-out the BRAM budget supports (Section 4: 8192 is used
  /// throughout the evaluation).
  static constexpr uint32_t kMaxFanout = 8192;

  /// Hash-module pipeline depth (Table 3: 5 cycles for murmur). The range
  /// comparator tree is log2(fanout) stages deep — again latency only.
  int hash_latency() const {
    if (hash == HashMethod::kMurmur) return 5;
    if (hash == HashMethod::kRange) {
      int bits = FanoutBits(fanout);
      return bits < 1 ? 1 : bits;
    }
    return 1;
  }
};

}  // namespace fpart
