// The write-back module of Section 4.3.
//
// Drains the write combiners' output FIFOs in round-robin order, computes
// each cache line's destination from the partition's base address (prefix
// sum in HIST mode, fixed-size layout in PAD mode) plus a per-partition
// cache-line offset counter, and sends it over QPI. QPI write bandwidth
// below the circuit's 12.8 GB/s output rate shows up as back-pressure.
//
// The base-address and offset-count BRAMs of the hardware (with the same
// forwarding trick as the write combiner) are modelled functionally here:
// at one line per cycle their pipelining is never the bottleneck.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "datagen/partitioned_output.h"
#include "fpga/write_combiner.h"
#include "qpi/qpi_link.h"
#include "sim/stats.h"

namespace fpart {

/// \brief Cycle-level model of the write-back stage.
template <typename T>
class WriteBackModule {
 public:
  /// \param out     destination partitions (pre-allocated). A line whose
  ///                partition has no free capacity left triggers the PAD
  ///                overflow abort (HIST capacities are exact, so there the
  ///                check never fires).
  /// \param inputs  one output FIFO per write combiner
  WriteBackModule(PartitionedOutput<T>* out,
                  std::vector<Fifo<CombinedLine<T>>*> inputs)
      : out_(out), inputs_(std::move(inputs)) {}

  /// Advance one clock cycle.
  void Tick(QpiLink* link, CycleStats* stats) {
    // Select the next line (round robin across combiners) if none pending.
    if (!pending_valid_ && !overflowed_) {
      for (size_t i = 0; i < inputs_.size(); ++i) {
        size_t idx = (rr_cursor_ + i) % inputs_.size();
        if (!inputs_[idx]->empty()) {
          pending_ = *inputs_[idx]->Pop();
          pending_valid_ = true;
          rr_cursor_ = (idx + 1) % inputs_.size();
          PartitionInfo& part = out_->part(pending_.partition);
          if (part.written_cls >= part.capacity_cls) {
            // PAD-mode overflow (Section 4.5): one of the fixed-size
            // partitions is full; the run aborts and falls back.
            overflowed_ = true;
            overflow_partition_ = pending_.partition;
            pending_valid_ = false;
            return;
          }
          pending_dest_cl_ = part.base_cl + part.written_cls;
          ++part.written_cls;
          part.num_tuples += pending_.valid_count;
          break;
        }
      }
    }
    // Send the pending line if QPI grants a write token this cycle.
    if (pending_valid_) {
      if (link->TryWrite()) {
        std::memcpy(out_->line(pending_dest_cl_), pending_.tuples.data(),
                    kCacheLineSize);
        ++stats->output_lines;
        stats->dummy_tuples += CombinedLine<T>::kTuples - pending_.valid_count;
        pending_valid_ = false;
      } else {
        ++stats->backpressure_cycles;
        ++stats->write_stall_cycles;
      }
    }
  }

  bool idle() const { return !pending_valid_; }
  bool overflowed() const { return overflowed_; }
  uint32_t overflow_partition() const { return overflow_partition_; }

 private:
  PartitionedOutput<T>* out_;
  std::vector<Fifo<CombinedLine<T>>*> inputs_;
  size_t rr_cursor_ = 0;

  CombinedLine<T> pending_{};
  bool pending_valid_ = false;
  uint64_t pending_dest_cl_ = 0;
  bool overflowed_ = false;
  uint32_t overflow_partition_ = 0;
};

}  // namespace fpart
