#include "fpga/resource_model.h"

#include "common/macros.h"

namespace fpart {

ResourceUsage EstimateResources(int tuple_width_bytes, uint32_t fanout) {
  const double k = static_cast<double>(kCacheLineSize) / tuple_width_bytes;
  const double key_bytes = tuple_width_bytes == 8 ? 4.0 : 8.0;

  // --- BRAM: K combiners × K banks × fanout entries × tuple width, plus
  // fill-rate BRAMs, FIFOs and the page table (a per-lane overhead).
  const double bank_bytes = k * k * fanout * tuple_width_bytes;
  const double bank_blocks = bank_bytes / StratixVDevice::kBramBlockBytes;
  const double overhead_blocks =
      (6.0 + 0.75 * k) / 100.0 * StratixVDevice::kBramBlocks;
  const double bram_pct =
      100.0 * (bank_blocks + overhead_blocks) / StratixVDevice::kBramBlocks;

  // --- DSP: two pipelined multipliers per hash lane; a 64-bit multiply
  // needs ~3x the DSPs of a 32-bit one.
  const double dsp_per_mult = key_bytes == 4.0 ? 2.25 : 6.75;
  const double dsp_blocks = k * 2.0 * dsp_per_mult;
  const double dsp_pct = 100.0 * dsp_blocks / StratixVDevice::kDspBlocks;

  // --- Logic: QPI plumbing and control are a fixed base; the combiner
  // steering (K banks × K lanes of comparators and muxes) adds a
  // quadratic term.
  const double logic_pct = 26.5 + 0.16 * k * k;

  return ResourceUsage{logic_pct, bram_pct, dsp_pct};
}

}  // namespace fpart
