// Simulation-result memoization (SimMode-independent plumbing).
//
// Concurrent partitioning workloads re-simulate the same (configuration,
// input) pairs over and over — the svc scheduler's join jobs in particular
// re-partition identical build sides — so full run results are worth
// memoizing. This header provides the two generic pieces:
//
//  * SimHasher / SimDigest: a 128-bit streaming digest (two independent
//    word-at-a-time FNV-1a lanes, finished with splitmix64) used to key
//    runs by config digest + input digest + simulation mode. 128 bits make
//    accidental collisions across a service lifetime implausible
//    (~2^-64 at a billion distinct runs); the digest is NOT
//    cryptographic and the cache must only be fed trusted inputs.
//
//  * ShardedLruCache<V>: a byte-budgeted LRU of shared_ptr<const V>,
//    sharded 16 ways like the obs metrics registry so concurrent probes
//    from scheduler workers do not serialize on one lock. Values are
//    immutable once inserted; callers deep-copy after the lookup returns
//    (FpgaRunResult buffers are move-only, so sharing the stored instance
//    directly would let one consumer mutate another's hit).
//
// The typed global cache instance lives in fpga/partitioner.h
// (FpgaPartitioner<T>::ResultCache), because the cached value type
// FpgaRunResult<T> is declared there; hit/miss/eviction totals are
// exported as the sim.cache.* counters of docs/observability.md.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace fpart {

/// \brief 128-bit content digest (not cryptographic).
struct SimDigest {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const SimDigest& other) const = default;
};

/// \brief Streaming hasher producing a SimDigest.
///
/// Two FNV-1a lanes over 8-byte words with independent basis values, each
/// finished with a splitmix64 avalanche so short inputs still spread over
/// all 128 bits. Word-at-a-time keeps digesting multi-GB inputs at memory
/// speed, which matters because the input digest is on the cache hit path.
class SimHasher {
 public:
  void MixBytes(const void* data, size_t bytes) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    while (bytes >= 8) {
      uint64_t w;
      std::memcpy(&w, p, 8);
      MixWord(w);
      p += 8;
      bytes -= 8;
    }
    if (bytes > 0) {
      uint64_t w = 0;
      std::memcpy(&w, p, bytes);
      MixWord(w | (uint64_t{bytes} << 56));
    }
  }

  void MixU64(uint64_t v) { MixWord(v); }

  SimDigest Finish() const {
    return SimDigest{SplitMix64(a_), SplitMix64(b_)};
  }

 private:
  static constexpr uint64_t kFnvPrime = 0x100000001b3ull;

  void MixWord(uint64_t w) {
    a_ = (a_ ^ w) * kFnvPrime;
    b_ = (b_ ^ w) * kFnvPrime;
  }

  static uint64_t SplitMix64(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  // Two distinct FNV-1a offset bases (the second is the standard basis
  // advanced by one prime multiplication) decorrelate the lanes.
  uint64_t a_ = 0xcbf29ce484222325ull;
  uint64_t b_ = 0xcbf29ce484222325ull * kFnvPrime;
};

struct SimCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

/// \brief Byte-budgeted, sharded LRU keyed by SimDigest.
///
/// Thread-safe; one mutex per shard (a lookup touches exactly one shard).
/// Stored values are shared_ptr<const V>: a Lookup returns a reference to
/// the immutable cached instance and never blocks on the value's size.
template <typename V>
class ShardedLruCache {
 public:
  static constexpr size_t kNumShards = 16;
  /// Default budget: 1 GiB across all shards — a few hundred service-sized
  /// run results.
  static constexpr size_t kDefaultMaxBytes = size_t{1} << 30;

  explicit ShardedLruCache(size_t max_bytes = kDefaultMaxBytes)
      : shard_budget_(max_bytes / kNumShards) {}

  /// Returns the cached value, promoting the entry to most recently used,
  /// or nullptr on a miss. Counts the probe either way.
  std::shared_ptr<const V> Lookup(const SimDigest& key) {
    Shard& s = shards_[ShardOf(key)];
    std::lock_guard<std::mutex> lock(s.mu);
    auto range = s.index.equal_range(key.lo);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second->key == key) {
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second->value;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  /// Inserts (or refreshes) an entry charged at `bytes`, then evicts from
  /// the shard's cold end until the shard is back under budget. An entry
  /// larger than the whole shard budget is dropped immediately (still
  /// counted as an eviction).
  void Insert(const SimDigest& key, std::shared_ptr<const V> value,
              size_t bytes) {
    Shard& s = shards_[ShardOf(key)];
    std::lock_guard<std::mutex> lock(s.mu);
    auto range = s.index.equal_range(key.lo);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second->key == key) {
        s.bytes -= it->second->bytes;
        s.bytes += bytes;
        it->second->value = std::move(value);
        it->second->bytes = bytes;
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        EvictOver(&s);
        return;
      }
    }
    s.lru.push_front(Entry{key, std::move(value), bytes});
    s.index.emplace(key.lo, s.lru.begin());
    s.bytes += bytes;
    EvictOver(&s);
  }

  SimCacheStats stats() const {
    SimCacheStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      st.entries += s.lru.size();
      st.bytes += s.bytes;
    }
    return st;
  }

  void Clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.lru.clear();
      s.index.clear();
      s.bytes = 0;
    }
  }

 private:
  struct Entry {
    SimDigest key;
    std::shared_ptr<const V> value;
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    // Keyed by the low digest word; full-key equality is re-checked on
    // every probe, so a 64-bit map collision only costs a bucket walk.
    std::unordered_multimap<uint64_t, typename std::list<Entry>::iterator>
        index;
    size_t bytes = 0;
  };

  static size_t ShardOf(const SimDigest& key) {
    return static_cast<size_t>(key.hi) % kNumShards;
  }

  void EvictOver(Shard* s) {
    while (s->bytes > shard_budget_ && !s->lru.empty()) {
      const Entry& victim = s->lru.back();
      auto range = s->index.equal_range(victim.key.lo);
      for (auto it = range.first; it != range.second; ++it) {
        if (it->second->key == victim.key) {
          s->index.erase(it);
          break;
        }
      }
      s->bytes -= victim.bytes;
      s->lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const size_t shard_budget_;
  std::array<Shard, kNumShards> shards_{};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace fpart
