// The write-combiner module of Section 4.2 (Figure 6, Code 4).
//
// One combiner per tuple slot of the input cache line. Each combiner gathers
// K tuples (K = tuples per cache line) of the same partition into a full
// 64 B line before it is written to memory, turning the naive
// (64+64)·T bytes of read-modify-write traffic into 64·T/K bytes.
//
// The circuit is fully pipelined. The fill-rate BRAM read takes 2 cycles;
// reads capture "old data", so when consecutive tuples hit the same
// partition the in-flight fill rate is forwarded from the previous one or
// two computed tuples instead of (wrongly) using the stale BRAM value.
// With forwarding the pipeline never stalls, regardless of input pattern —
// the paper's headline property. A kStall hazard policy is provided for the
// ablation benchmark: it models the naive circuit that pauses the pipe on
// read-after-write hazards instead.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "datagen/tuple.h"
#include "fpga/hash_lane.h"
#include "sim/bram.h"
#include "sim/fifo.h"

namespace fpart {

/// Hazard handling for the fill-rate BRAM read-after-write dependency.
enum class HazardPolicy {
  /// Forwarding registers over the last two in-flight tuples (Code 4).
  kForward,
  /// Naive: stall the pipe while a same-partition tuple is in flight.
  kStall,
};

/// \brief A full cache line assembled by a write combiner.
template <typename T>
struct CombinedLine {
  static constexpr int kTuples = TupleTraits<T>::kTuplesPerCacheLine;

  uint32_t partition = 0;
  std::array<T, kTuples> tuples{};
  /// Real tuples in the line; the rest are dummy padding (flush only).
  uint8_t valid_count = 0;
};

/// \brief Cycle-level model of one write-combiner module.
template <typename T>
class WriteCombiner {
 public:
  static constexpr int K = TupleTraits<T>::kTuplesPerCacheLine;

  WriteCombiner(uint32_t fanout, size_t input_depth, size_t output_depth,
                HazardPolicy hazard = HazardPolicy::kForward)
      : fanout_(fanout),
        hazard_(hazard),
        in_(input_depth),
        out_(output_depth),
        fill_(fanout, /*latency=*/2) {
    banks_.reserve(K);
    for (int b = 0; b < K; ++b) banks_.emplace_back(fanout, /*latency=*/1);
  }

  Fifo<HashedTuple<T>>& input() { return in_; }
  const Fifo<HashedTuple<T>>& input() const { return in_; }
  Fifo<CombinedLine<T>>& output() { return out_; }
  const Fifo<CombinedLine<T>>& output() const { return out_; }

  /// Advance one clock cycle.
  void Tick() {
    fill_.Tick();
    for (auto& bank : banks_) bank.Tick();

    // --- Stage 3: the 8-bank read issued last cycle completed; assemble
    // the full cache line and push it downstream.
    if (assembling_valid_) {
      CombinedLine<T> line;
      line.partition = assembling_hash_;
      line.valid_count = K;
      for (int b = 0; b < K; ++b) line.tuples[b] = banks_[b].read_data();
      if (!out_.Push(line)) ++lost_lines_;  // impossible: slots are reserved
      assembling_valid_ = false;
    }

    // --- Stage 0: pop a new tuple and issue its fill-rate read. The read
    // is issued *before* stage 2's write below lands, modelling the BRAM's
    // old-data read semantics — the reason forwarding exists.
    Stage incoming;
    if (!in_.empty() && out_.free_slots() > InFlightLines()) {
      if (hazard_ == HazardPolicy::kStall && HasHazard(in_.Front().hash)) {
        ++stall_cycles_;
      } else {
        HashedTuple<T> popped = *in_.Pop();
        incoming.valid = true;
        incoming.hash = popped.hash;
        incoming.tuple = popped.tuple;
        fill_.IssueRead(incoming.hash);
        ++tuples_in_;
      }
    }

    // --- Stage 2: the tuple popped two cycles ago receives its fill rate
    // (from the BRAM or forwarded) and is steered into a bank.
    Prev computed;
    if (stage2_.valid) {
      uint32_t which;
      if (hazard_ == HazardPolicy::kForward && prev1_.valid &&
          stage2_.hash == prev1_.hash) {
        which = (prev1_.bank + 1) & (K - 1);
      } else if (hazard_ == HazardPolicy::kForward && prev2_.valid &&
                 stage2_.hash == prev2_.hash) {
        which = (prev2_.bank + 1) & (K - 1);
      } else {
        if (!fill_.read_ready()) ++alignment_errors_;
        which = fill_.read_data();
      }
      which &= static_cast<uint32_t>(K - 1);
      if (which == static_cast<uint32_t>(K - 1)) {
        // Line complete: reset the fill rate, store the closing tuple, then
        // request all K banks at this address (the write above is visible
        // because the actual bank read happens one cycle later).
        fill_.Write(stage2_.hash, 0);
        banks_[K - 1].Write(stage2_.hash, stage2_.tuple);
        for (int b = 0; b < K; ++b) banks_[b].IssueRead(stage2_.hash);
        assembling_valid_ = true;
        assembling_hash_ = stage2_.hash;
      } else {
        fill_.Write(stage2_.hash, static_cast<uint8_t>(which + 1));
        banks_[which].Write(stage2_.hash, stage2_.tuple);
      }
      computed.valid = true;
      computed.hash = stage2_.hash;
      computed.bank = static_cast<uint8_t>(which);
    }

    // --- Shift the pipeline registers.
    stage2_ = stage1_;
    stage1_ = incoming;
    prev2_ = prev1_;
    prev1_ = computed;
  }

  /// True when no tuple is anywhere in the internal pipeline.
  bool drained() const {
    return in_.empty() && !stage1_.valid && !stage2_.valid &&
           !assembling_valid_;
  }

  /// Flush step (Section 4.2 end-of-run): emit the partial line of
  /// partition `p`, padding empty slots with dummy keys. Returns the number
  /// of dummy tuples added, or -1 if nothing was pending at `p`.
  /// Caller guarantees the pipe is drained and the output FIFO has room.
  int FlushPartition(uint32_t p) {
    uint8_t fill = fill_.Peek(p);
    if (fill == 0) return -1;
    CombinedLine<T> line;
    line.partition = p;
    line.valid_count = fill;
    for (int b = 0; b < K; ++b) {
      line.tuples[b] =
          b < fill ? banks_[b].Peek(p) : MakeDummyTuple<T>();
    }
    fill_.Write(p, 0);
    out_.Push(line);
    return K - fill;
  }

  uint32_t fanout() const { return fanout_; }
  uint64_t tuples_in() const { return tuples_in_; }
  /// Hazard-induced pipeline stalls; 0 under HazardPolicy::kForward.
  uint64_t stall_cycles() const { return stall_cycles_; }
  /// Dropped lines / missing BRAM deliveries; both must always be 0.
  uint64_t lost_lines() const { return lost_lines_; }
  uint64_t alignment_errors() const { return alignment_errors_; }

 private:
  struct Stage {
    bool valid = false;
    uint32_t hash = 0;
    T tuple{};
  };
  struct Prev {
    bool valid = false;
    uint32_t hash = 0;
    uint8_t bank = 0;
  };

  /// Lines that may still materialize from tuples already in the pipe.
  size_t InFlightLines() const {
    return (stage1_.valid ? 1 : 0) + (stage2_.valid ? 1 : 0) +
           (assembling_valid_ ? 1 : 0);
  }

  /// kStall policy: a same-partition tuple is still in flight.
  bool HasHazard(uint32_t hash) const {
    return (stage1_.valid && stage1_.hash == hash) ||
           (stage2_.valid && stage2_.hash == hash);
  }

  uint32_t fanout_;
  HazardPolicy hazard_;
  Fifo<HashedTuple<T>> in_;
  Fifo<CombinedLine<T>> out_;
  Bram<uint8_t> fill_;
  std::vector<Bram<T>> banks_;

  Stage stage1_, stage2_;
  Prev prev1_, prev2_;
  bool assembling_valid_ = false;
  uint32_t assembling_hash_ = 0;

  uint64_t tuples_in_ = 0;
  uint64_t stall_cycles_ = 0;
  uint64_t lost_lines_ = 0;
  uint64_t alignment_errors_ = 0;
};

}  // namespace fpart
