// Top-level FPGA partitioner circuit (Section 4, Figure 5).
//
// The circuit is simulated cycle by cycle: per clock it can accept one
// 64 B cache line from QPI, push one tuple into each of the K hash lanes,
// advance every write combiner one stage, and emit one combined cache line
// through the write-back module — exactly the fully pipelined dataflow of
// the paper. The QPI link throttles both directions with the calibrated
// Figure 2 bandwidth curve, so simulated cycles × 5 ns reproduces the
// paper's end-to-end throughput; with the 25.6 GB/s raw wrapper the circuit
// runs at its internal rate of one cache line per cycle.
//
// Functionally, the simulation really moves the tuples: the result is a
// PartitionedOutput backed by host memory that the CPU join phases consume.
// Address translation (the BRAM page table of Section 2.1) is validated in
// its own unit tests; inside this hot loop the translation is represented
// by its latency only, since it is pipelined and never limits throughput.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "compress/for_codec.h"
#include "datagen/partitioned_output.h"
#include "datagen/tuple.h"
#include "fpga/analytical_engine.h"
#include "fpga/config.h"
#include "fpga/fast_engine.h"
#include "fpga/sim_cache.h"
#include "fpga/hash_lane.h"
#include "fpga/staging.h"
#include "fpga/write_back.h"
#include "fpga/write_combiner.h"
#include "hash/hash_function.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qpi/qpi_link.h"
#include "sim/stats.h"

namespace fpart {

/// \brief Result of one partitioning run on the (simulated) FPGA.
template <typename T>
struct FpgaRunResult {
  PartitionedOutput<T> output;
  CycleStats stats;
  /// Simulated wall time: cycles × 5 ns (200 MHz clock).
  double seconds = 0.0;
  double mtuples_per_sec = 0.0;
  /// Exact per-partition tuple counts (HIST mode only; empty in PAD mode).
  std::vector<uint64_t> histogram;
  /// Observed QPI read/write cache-line ratio r (for model validation).
  double read_write_ratio = 0.0;
};

/// \brief The paper's FPGA data partitioner, as a cycle-level simulator.
template <typename T>
class FpgaPartitioner {
 public:
  static constexpr int K = TupleTraits<T>::kTuplesPerCacheLine;
  using KeyType = decltype(T{}.key);
  static constexpr int kKeysPerCacheLine = kCacheLineSize / sizeof(KeyType);

  explicit FpgaPartitioner(FpgaPartitionerConfig config)
      : config_(std::move(config)),
        fn_(config_.hash == HashMethod::kRange
                ? PartitionFn::Range(config_.range_splitters)
                : PartitionFn(config_.hash, config_.fanout)) {}

  const FpgaPartitionerConfig& config() const { return config_; }

  /// Ablation hook: switch the write combiners to the naive stalling
  /// circuit (bench/ablation_forwarding).
  void set_hazard_policy(HazardPolicy policy) { hazard_ = policy; }

  /// Process-wide memoization cache of completed runs for this tuple type,
  /// keyed by (config digest, input digest) — the digest covers sim_mode,
  /// so runs of different engines never alias even though their outputs
  /// are identical. Enabled per run by FpgaPartitionerConfig::sim_cache;
  /// exposed so tests and long-running services can Clear() it or read its
  /// occupancy.
  static ShardedLruCache<FpgaRunResult<T>>& ResultCache() {
    static auto* cache = new ShardedLruCache<FpgaRunResult<T>>();
    return *cache;
  }

  /// RID mode: partition a row-store relation of n tuples.
  Result<FpgaRunResult<T>> Partition(const T* tuples, size_t n) {
    if (config_.layout != LayoutMode::kRid) {
      return Status::InvalidArgument(
          "config selects VRID; call PartitionColumn");
    }
    FPART_RETURN_NOT_OK(Validate());
    in_tuples_ = tuples;
    in_keys_ = nullptr;
    in_column_ = nullptr;
    return Run(n);
  }

  /// VRID mode: partition a column-store key array; the circuit appends
  /// virtual record ids (the key's position) as payloads.
  Result<FpgaRunResult<T>> PartitionColumn(const KeyType* keys, size_t n) {
    if (config_.layout != LayoutMode::kVrid) {
      return Status::InvalidArgument("config selects RID; call Partition");
    }
    FPART_RETURN_NOT_OK(Validate());
    in_tuples_ = nullptr;
    in_keys_ = keys;
    in_column_ = nullptr;
    return Run(n);
  }

  /// Compressed mode (Section 6): partition a FOR bit-packed key column;
  /// the circuit decompresses each 64 B frame as the first pipeline step
  /// and appends virtual record ids. Reads shrink by the compression
  /// ratio.
  Result<FpgaRunResult<T>> PartitionCompressed(const CompressedColumn& column) {
    if (config_.layout != LayoutMode::kCompressed) {
      return Status::InvalidArgument(
          "config does not select the compressed layout");
    }
    FPART_RETURN_NOT_OK(Validate());
    in_tuples_ = nullptr;
    in_keys_ = nullptr;
    in_column_ = &column;
    return Run(column.num_keys());
  }

 private:
  using Group = TupleGroup<T>;

  Status Validate() const {
    if (!IsPowerOfTwo(config_.fanout) ||
        config_.fanout > FpgaPartitionerConfig::kMaxFanout) {
      return Status::InvalidArgument(
          "fanout must be a power of two <= " +
          std::to_string(FpgaPartitionerConfig::kMaxFanout));
    }
    if (config_.lane_fifo_depth <
        static_cast<uint32_t>(config_.hash_latency() + 2)) {
      return Status::InvalidArgument(
          "lane FIFO must cover the hash pipeline depth");
    }
    if (config_.hash == HashMethod::kRange &&
        config_.range_splitters.size() + 1 != config_.fanout) {
      return Status::InvalidArgument(
          "range partitioning needs exactly fanout-1 splitters");
    }
    return Status::OK();
  }

  QpiLink MakeLink() const {
    if (config_.link == LinkKind::kRawWrapper) {
      return QpiLink::Fixed(kFpgaClockHz, kRawWrapperBandwidthGBs);
    }
    return QpiLink::XeonFpga(kFpgaClockHz, config_.interference);
  }

  /// Shared per-cycle input machinery: issue a QPI read when the staging
  /// buffer has room, then feed one tuple group into the hash lanes if
  /// every lane FIFO can absorb it (the back-pressure rule of Section 4.3:
  /// read requests are only issued while the first-stage FIFOs have room).
  void FeedCycle(const InputStager<T>& stager, size_t n, size_t total_reads,
                 size_t* reads_done, std::deque<Group>* staging, QpiLink* link,
                 CycleStats* stats, std::vector<HashLane<T>>* lanes,
                 const std::vector<Fifo<HashedTuple<T>>*>& lane_fifos,
                 uint64_t* fed) {
    if (*reads_done < total_reads &&
        staging->size() < 2 * stager.GroupsPerRead()) {
      if (link->TryRead()) {
        stager.MaterializeGroups(n, *reads_done, staging);
        ++*reads_done;
        ++stats->read_lines;
      } else {
        ++stats->backpressure_cycles;
        ++stats->read_stall_cycles;
      }
    }
    bool ready = !staging->empty();
    for (int c = 0; c < K && ready; ++c) {
      if (lane_fifos[c]->free_slots() <= (*lanes)[c].in_flight()) {
        ready = false;
      }
    }
    if (ready) {
      const Group& group = staging->front();
      for (int c = 0; c < K; ++c) {
        (*lanes)[c].Tick(c < group.count ? std::optional<T>(group.tuples[c])
                                         : std::nullopt);
      }
      *fed += group.count;
      ++stats->input_lines;
      staging->pop_front();
    } else {
      for (int c = 0; c < K; ++c) (*lanes)[c].Tick(std::nullopt);
    }
  }

  bool cancelled() const {
    return config_.cancel != nullptr &&
           config_.cancel->load(std::memory_order_relaxed);
  }

  /// Outer run path: memoization probe, engine execution, sampled
  /// cross-check, cache fill. RunEngine() below is the actual simulation.
  Result<FpgaRunResult<T>> Run(size_t n) {
    const bool analytical = config_.sim_mode == SimMode::kAnalytical;
    const bool sample_xcheck = analytical && config_.xcheck > 0.0;
    SimDigest input_digest{};
    if (config_.sim_cache || sample_xcheck) {
      input_digest = InputDigest(n);
    }
    SimDigest cache_key{};
    if (config_.sim_cache) {
      cache_key = CacheKey(ConfigDigest(), input_digest);
      if (std::shared_ptr<const FpgaRunResult<T>> hit =
              ResultCache().Lookup(cache_key)) {
        // A hit replays the memoized run: identical output bytes and
        // CycleStats, but the per-run sim.* counters are not re-published
        // (the simulation did not happen again) — only the cache counters
        // record the probe.
        PublishCacheObservability(true);
        return CloneResult(*hit);
      }
      PublishCacheObservability(false);
    }

    FpgaRunResult<T> result;
    FPART_RETURN_NOT_OK(RunEngine(n, &result));

    if (sample_xcheck && SampledForCrossCheck(input_digest)) {
      FPART_RETURN_NOT_OK(CrossCheck(n, result));
    }
    if (config_.sim_cache) {
      FPART_ASSIGN_OR_RETURN(FpgaRunResult<T> copy, CloneResult(result));
      ResultCache().Insert(
          cache_key,
          std::make_shared<const FpgaRunResult<T>>(std::move(copy)),
          ResultBytes(result));
      PublishCacheOccupancy();
    }
    if (config_.publish_metrics) {
      PublishRunObservability(result.stats);
    }
    return result;
  }

  Status RunEngine(size_t n, FpgaRunResult<T>* out) {
    FpgaRunResult<T>& result = *out;
    QpiLink link = MakeLink();
    const InputStager<T> stager(config_, in_tuples_, in_keys_, in_column_);
    const SimMode mode = config_.sim_mode;

    if (cancelled()) {
      return Status::Cancelled("FPGA partition cancelled before start");
    }
    std::vector<std::vector<uint64_t>> lane_hist;
    if (config_.output_mode == OutputMode::kHist) {
      if (mode == SimMode::kFast) {
        FastCircuit<T> circuit(config_, fn_, hazard_, stager);
        FPART_RETURN_NOT_OK(circuit.HistogramPass(n, MaxCycles(n), &link,
                                                  &result.stats, &lane_hist));
      } else if (mode == SimMode::kAnalytical) {
        AnalyticalCircuit<T> circuit(config_, fn_, hazard_, stager);
        FPART_RETURN_NOT_OK(circuit.HistogramPass(n, MaxCycles(n), &link,
                                                  &result.stats, &lane_hist));
      } else {
        FPART_RETURN_NOT_OK(
            HistogramPass(stager, n, &link, &result.stats, &lane_hist));
      }
    }

    // --- Allocate the destination partitions.
    std::vector<uint32_t> capacity_cls(config_.fanout);
    if (config_.output_mode == OutputMode::kHist) {
      // Exact allocation from the per-lane histograms: each combiner emits
      // ceil(count/K) lines per partition (full lines plus its flush line).
      result.histogram.assign(config_.fanout, 0);
      for (uint32_t p = 0; p < config_.fanout; ++p) {
        uint64_t cls = 0;
        for (int c = 0; c < K; ++c) {
          cls += (lane_hist[c][p] + K - 1) / K;
          result.histogram[p] += lane_hist[c][p];
        }
        capacity_cls[p] = static_cast<uint32_t>(cls);
      }
      // Computing the prefix sum over the histogram BRAM costs one pass
      // over the partitions (Section 4.3).
      result.stats.cycles += config_.fanout;
      // Engine-agnostic phase boundary: everything so far (pass 1 + prefix
      // sum) is the histogram share of the run.
      result.stats.histogram_cycles = result.stats.cycles;
    } else {
      // PAD mode: #Tuples/#Partitions + Padding, rounded up to cache lines.
      // Every combiner can leave one partially filled line per partition at
      // flush time, so the fixed size also reserves K-1 lines of
      // fragmentation slack on top of the tuple budget.
      double per_part = static_cast<double>(n) / config_.fanout;
      uint64_t cap_tuples =
          static_cast<uint64_t>(per_part * (1.0 + config_.pad_fraction)) + 1;
      uint32_t cls =
          static_cast<uint32_t>((cap_tuples + K - 1) / K) + (K - 1);
      std::fill(capacity_cls.begin(), capacity_cls.end(),
                std::max(1u, cls));
    }
    FPART_ASSIGN_OR_RETURN(result.output,
                           PartitionedOutput<T>::Allocate(capacity_cls));

    if (cancelled()) {
      return Status::Cancelled("FPGA partition cancelled between passes");
    }
    if (mode == SimMode::kFast) {
      FastCircuit<T> circuit(config_, fn_, hazard_, stager);
      FPART_RETURN_NOT_OK(circuit.PartitionPass(n, MaxCycles(n), &link,
                                                &result.stats, &result.output));
    } else if (mode == SimMode::kAnalytical) {
      AnalyticalCircuit<T> circuit(config_, fn_, hazard_, stager);
      FPART_RETURN_NOT_OK(circuit.PartitionPass(n, MaxCycles(n), &link,
                                                &result.stats, &result.output));
    } else {
      FPART_RETURN_NOT_OK(
          PartitionPass(stager, n, &link, &result.stats, &result.output));
    }

    result.seconds = result.stats.Seconds(kFpgaClockHz);
    result.mtuples_per_sec =
        result.seconds > 0 ? n / result.seconds / 1e6 : 0.0;
    result.read_write_ratio =
        link.writes_granted() > 0
            ? static_cast<double>(link.reads_granted()) /
                  static_cast<double>(link.writes_granted())
            : 0.0;
    return Status::OK();
  }

  /// Export one run's cycle counters to the global metrics registry (the
  /// `sim.*` / `qpi.*` catalogue of docs/observability.md — cumulative
  /// across runs in this process) and, when tracing is on, its per-pass
  /// spans on a simulated timeline.
  static void PublishRunObservability(const CycleStats& stats) {
    auto& reg = obs::Registry::Global();
    static obs::Counter* const runs = reg.GetCounter(
        "sim.runs", "runs", "simulated partitioning runs completed");
    static obs::Counter* const cycles = reg.GetCounter(
        "sim.cycles", "cycles", "total simulated clock cycles");
    static obs::Counter* const hist_cycles = reg.GetCounter(
        "sim.histogram_pass_cycles", "cycles",
        "HIST pass 1 + prefix-sum share of sim.cycles");
    static obs::Counter* const flush_cycles = reg.GetCounter(
        "sim.flush_drain_cycles", "cycles",
        "flush + drain epilogue share of sim.cycles");
    static obs::Counter* const input_lines = reg.GetCounter(
        "sim.hash_lane.input_lines", "cache_lines",
        "input lines accepted into the hash lanes");
    static obs::Counter* const wc_stalls = reg.GetCounter(
        "sim.write_combiner.stall_cycles", "cycles",
        "internal pipeline stalls (0 under the forwarding policy)");
    static obs::Counter* const dummies = reg.GetCounter(
        "sim.write_back.dummy_tuples", "tuples",
        "padding tuples emitted by the flush");
    static obs::Counter* const read_lines = reg.GetCounter(
        "qpi.read_lines", "cache_lines", "cache lines read over QPI");
    static obs::Counter* const write_lines = reg.GetCounter(
        "qpi.write_lines", "cache_lines",
        "cache lines written back over QPI");
    static obs::Counter* const read_stalls = reg.GetCounter(
        "qpi.read_stall_cycles", "cycles",
        "cycles a pending read found no bandwidth token (Figure 2 bound)");
    static obs::Counter* const write_stalls = reg.GetCounter(
        "qpi.write_stall_cycles", "cycles",
        "cycles a pending write-back line found no bandwidth token");
    static obs::Counter* const bytes = reg.GetCounter(
        "qpi.bytes", "bytes", "total bytes moved over QPI");
    runs->Add();
    cycles->Add(stats.cycles);
    hist_cycles->Add(stats.histogram_cycles);
    flush_cycles->Add(stats.flush_cycles);
    input_lines->Add(stats.input_lines);
    wc_stalls->Add(stats.internal_stall_cycles);
    dummies->Add(stats.dummy_tuples);
    read_lines->Add(stats.read_lines);
    write_lines->Add(stats.output_lines);
    read_stalls->Add(stats.read_stall_cycles);
    write_stalls->Add(stats.write_stall_cycles);
    bytes->Add((stats.read_lines + stats.output_lines) * kCacheLineSize);
    obs::AddSimRunTrace(stats.cycles, stats.histogram_cycles,
                        stats.flush_cycles, kFpgaClockHz);
  }

  static void PublishCacheObservability(bool hit) {
    auto& reg = obs::Registry::Global();
    static obs::Counter* const hits = reg.GetCounter(
        "sim.cache.hits", "lookups",
        "sim-result cache probes answered from the memoized run");
    static obs::Counter* const misses = reg.GetCounter(
        "sim.cache.misses", "lookups",
        "sim-result cache probes that fell through to the simulator");
    if (hit) {
      hits->Add();
    } else {
      misses->Add();
    }
  }

  static void PublishCacheOccupancy() {
    auto& reg = obs::Registry::Global();
    static obs::Counter* const evictions = reg.GetCounter(
        "sim.cache.evictions", "entries",
        "sim-result cache entries evicted by the byte budget");
    static obs::Gauge* const entries = reg.GetGauge(
        "sim.cache.entries", "entries", "sim-result cache live entries");
    static obs::Gauge* const bytes = reg.GetGauge(
        "sim.cache.bytes", "bytes", "sim-result cache bytes held");
    // The counter is driven from the cache's own monotone total: adding
    // the delta since the last publication keeps it correct under
    // concurrent inserts (fetch-and-swap of the last-seen value).
    static std::atomic<uint64_t> last_published{0};
    const SimCacheStats st = ResultCache().stats();
    uint64_t prev = last_published.exchange(st.evictions,
                                            std::memory_order_relaxed);
    if (st.evictions > prev) evictions->Add(st.evictions - prev);
    entries->Set(static_cast<double>(st.entries));
    bytes->Set(static_cast<double>(st.bytes));
  }

  /// Digest of every configuration knob that can change the run's output
  /// or reported stats. sim_mode is included (kAnalytical predicts its
  /// timing, so its CycleStats must not alias the cycle engines'); the
  /// run-orchestration knobs (sim_cache, xcheck*, publish_metrics, cancel)
  /// are deliberately excluded — they do not affect the result.
  SimDigest ConfigDigest() const {
    SimHasher h;
    h.MixU64(config_.fanout);
    h.MixU64(static_cast<uint64_t>(config_.output_mode));
    h.MixU64(static_cast<uint64_t>(config_.layout));
    h.MixU64(static_cast<uint64_t>(config_.hash));
    h.MixU64(config_.range_splitters.size());
    for (uint64_t s : config_.range_splitters) h.MixU64(s);
    h.MixU64(std::bit_cast<uint64_t>(config_.pad_fraction));
    h.MixU64(static_cast<uint64_t>(config_.link));
    h.MixU64(static_cast<uint64_t>(config_.interference));
    h.MixU64(static_cast<uint64_t>(config_.sim_mode));
    h.MixU64(config_.lane_fifo_depth);
    h.MixU64(config_.output_fifo_depth);
    h.MixU64(static_cast<uint64_t>(hazard_));
    h.MixU64(sizeof(T));
    return h.Finish();
  }

  /// Digest of the active input's raw bytes (whichever of the three entry
  /// points armed this run).
  SimDigest InputDigest(size_t n) const {
    SimHasher h;
    h.MixU64(n);
    if (in_tuples_ != nullptr) {
      h.MixU64(0);
      h.MixBytes(in_tuples_, n * sizeof(T));
    } else if (in_keys_ != nullptr) {
      h.MixU64(1);
      h.MixBytes(in_keys_, n * sizeof(KeyType));
    } else if (in_column_ != nullptr) {
      h.MixU64(2);
      h.MixU64(in_column_->num_keys());
      if (in_column_->num_frames() > 0) {
        // Frames are contiguous 64 B blocks in one buffer.
        h.MixBytes(in_column_->frame(0),
                   in_column_->num_frames() * kCacheLineSize);
      }
    }
    return h.Finish();
  }

  static SimDigest CacheKey(const SimDigest& config_digest,
                            const SimDigest& input_digest) {
    SimHasher h;
    h.MixU64(config_digest.hi);
    h.MixU64(config_digest.lo);
    h.MixU64(input_digest.hi);
    h.MixU64(input_digest.lo);
    return h.Finish();
  }

  /// Deterministic sampling: the input digest is uniform, so comparing it
  /// against the sampling fraction picks a reproducible xcheck subset —
  /// reruns of the same workload cross-check the same runs.
  bool SampledForCrossCheck(const SimDigest& input_digest) const {
    constexpr uint64_t kScale = 1000000;
    const uint64_t threshold =
        static_cast<uint64_t>(config_.xcheck * static_cast<double>(kScale));
    return input_digest.hi % kScale < threshold;
  }

  static Result<FpgaRunResult<T>> CloneResult(const FpgaRunResult<T>& r) {
    FpgaRunResult<T> out;
    FPART_ASSIGN_OR_RETURN(out.output, r.output.Clone());
    out.stats = r.stats;
    out.seconds = r.seconds;
    out.mtuples_per_sec = r.mtuples_per_sec;
    out.histogram = r.histogram;
    out.read_write_ratio = r.read_write_ratio;
    return out;
  }

  static size_t ResultBytes(const FpgaRunResult<T>& r) {
    return static_cast<size_t>(r.output.total_cls()) * kCacheLineSize +
           r.output.num_partitions() * sizeof(PartitionInfo) +
           r.histogram.size() * sizeof(uint64_t) + sizeof(FpgaRunResult<T>);
  }

  /// Re-execute this run on the kFast cycle engine and compare: output
  /// bytes and partition metadata must be identical (the analytical replay
  /// is placement-exact by construction), and the predicted cycle count
  /// must be within xcheck_tolerance of the simulated one. The relative
  /// error lands in the sim.analytical.error_pct histogram either way.
  Status CrossCheck(size_t n, const FpgaRunResult<T>& result) {
    FpgaPartitionerConfig ref_config = config_;
    ref_config.sim_mode = SimMode::kFast;
    ref_config.sim_cache = false;
    ref_config.xcheck = 0.0;
    ref_config.publish_metrics = false;
    FpgaPartitioner<T> ref(std::move(ref_config));
    ref.hazard_ = hazard_;
    ref.in_tuples_ = in_tuples_;
    ref.in_keys_ = in_keys_;
    ref.in_column_ = in_column_;
    FpgaRunResult<T> fast;
    Status st = ref.RunEngine(n, &fast);
    if (!st.ok()) {
      return Status::Internal(
          "analytical cross-check: fast re-execution failed: " +
          st.ToString());
    }
    if (fast.output.total_cls() != result.output.total_cls() ||
        fast.output.num_partitions() != result.output.num_partitions()) {
      return Status::Internal(
          "analytical cross-check: output shape diverged from fast engine");
    }
    if (result.output.total_cls() > 0 &&
        std::memcmp(result.output.line(0), fast.output.line(0),
                    result.output.total_cls() * kCacheLineSize) != 0) {
      return Status::Internal(
          "analytical cross-check: output bytes diverged from fast engine");
    }
    for (size_t p = 0; p < result.output.num_partitions(); ++p) {
      const PartitionInfo& a = result.output.part(p);
      const PartitionInfo& b = fast.output.part(p);
      if (a.base_cl != b.base_cl || a.capacity_cls != b.capacity_cls ||
          a.written_cls != b.written_cls || a.num_tuples != b.num_tuples) {
        return Status::Internal(
            "analytical cross-check: partition " + std::to_string(p) +
            " metadata diverged from fast engine");
      }
    }
    if (result.histogram != fast.histogram) {
      return Status::Internal(
          "analytical cross-check: histogram diverged from fast engine");
    }
    const double err =
        fast.stats.cycles > 0
            ? std::abs(static_cast<double>(result.stats.cycles) -
                       static_cast<double>(fast.stats.cycles)) /
                  static_cast<double>(fast.stats.cycles)
            : 0.0;
    static obs::Histogram* const error_hist =
        obs::Registry::Global().GetHistogram(
            "sim.analytical.error_pct", "percent",
            "relative cycle error of cross-checked analytical runs");
    error_hist->Record(static_cast<uint64_t>(std::llround(err * 100.0)));
    if (err > config_.xcheck_tolerance) {
      return Status::Internal(
          "analytical cross-check: predicted " +
          std::to_string(result.stats.cycles) + " cycles vs simulated " +
          std::to_string(fast.stats.cycles) + " (error " +
          std::to_string(err * 100.0) + "% exceeds tolerance " +
          std::to_string(config_.xcheck_tolerance * 100.0) + "%)");
    }
    return Status::OK();
  }

  /// HIST pass 1: scan the relation and build per-lane histograms; nothing
  /// is written back (Section 4.5).
  Status HistogramPass(const InputStager<T>& stager, size_t n, QpiLink* link,
                       CycleStats* stats,
                       std::vector<std::vector<uint64_t>>* lane_hist) {
    lane_hist->assign(K, std::vector<uint64_t>(config_.fanout, 0));
    std::vector<Fifo<HashedTuple<T>>> fifo_storage(
        K, Fifo<HashedTuple<T>>(config_.lane_fifo_depth));
    std::vector<Fifo<HashedTuple<T>>*> lane_fifos;
    std::vector<HashLane<T>> lanes;
    lanes.reserve(K);
    for (int c = 0; c < K; ++c) {
      lane_fifos.push_back(&fifo_storage[c]);
      lanes.emplace_back(fn_, config_.hash_latency(), &fifo_storage[c]);
    }

    const size_t total_reads = stager.TotalReads(n);
    size_t reads_done = 0;
    std::deque<Group> staging;
    uint64_t fed = 0;
    const uint64_t max_cycles = MaxCycles(n);

    auto busy = [&] {
      if (fed < n) return true;
      for (int c = 0; c < K; ++c) {
        if (!lanes[c].empty() || !fifo_storage[c].empty()) return true;
      }
      return false;
    };
    while (busy()) {
      if (stats->cycles++ > max_cycles) {
        return Status::Internal("histogram pass exceeded cycle budget");
      }
      link->Tick();
      // Histogram sink: one tuple per lane per cycle.
      for (int c = 0; c < K; ++c) {
        if (auto ht = fifo_storage[c].Pop()) {
          ++(*lane_hist)[c][ht->hash];
        }
      }
      FeedCycle(stager, n, total_reads, &reads_done, &staging, link, stats,
                &lanes, lane_fifos, &fed);
    }
    return Status::OK();
  }

  /// The writing pass (PAD's only pass / HIST's second pass).
  Status PartitionPass(const InputStager<T>& stager, size_t n, QpiLink* link,
                       CycleStats* stats, PartitionedOutput<T>* output) {
    std::vector<WriteCombiner<T>> combiners;
    combiners.reserve(K);
    for (int c = 0; c < K; ++c) {
      combiners.emplace_back(config_.fanout, config_.lane_fifo_depth,
                             config_.output_fifo_depth, hazard_);
    }
    std::vector<HashLane<T>> lanes;
    std::vector<Fifo<HashedTuple<T>>*> lane_fifos;
    lanes.reserve(K);
    for (int c = 0; c < K; ++c) {
      lane_fifos.push_back(&combiners[c].input());
      lanes.emplace_back(fn_, config_.hash_latency(), &combiners[c].input());
    }
    std::vector<Fifo<CombinedLine<T>>*> outputs;
    for (int c = 0; c < K; ++c) outputs.push_back(&combiners[c].output());
    WriteBackModule<T> write_back(output, outputs);

    const size_t total_reads = stager.TotalReads(n);
    size_t reads_done = 0;
    std::deque<Group> staging;
    uint64_t fed = 0;
    const uint64_t max_cycles = MaxCycles(n);

    auto overflow_status = [&] {
      return Status::PartitionOverflow(
          "PAD-mode partition " +
          std::to_string(write_back.overflow_partition()) +
          " overflowed; retry in HIST mode or fall back to the CPU "
          "partitioner (Section 4.5)");
    };

    // --- Main streaming loop: runs until every tuple has left the hash
    // pipelines AND the combiners AND the write-back stage.
    auto busy = [&] {
      if (fed < n || !write_back.idle()) return true;
      for (const auto& lane : lanes) {
        if (!lane.empty()) return true;
      }
      for (const auto& c : combiners) {
        if (!c.drained() || !c.output().empty()) return true;
      }
      return false;
    };
    while (busy()) {
      if (stats->cycles++ > max_cycles) {
        return Status::Internal("partition pass exceeded cycle budget");
      }
      link->Tick();
      write_back.Tick(link, stats);
      if (write_back.overflowed()) return overflow_status();
      for (auto& c : combiners) c.Tick();
      FeedCycle(stager, n, total_reads, &reads_done, &staging, link, stats,
                &lanes, lane_fifos, &fed);
    }

    // --- Flush: scan every (combiner, partition) BRAM address at one per
    // cycle (the cwritecomb = K·#partitions latency term of Table 3),
    // emitting padded partial lines.
    const uint64_t flush_start_cycles = stats->cycles;
    for (int c = 0; c < K; ++c) {
      uint32_t p = 0;
      while (p < config_.fanout) {
        if (stats->cycles++ > max_cycles) {
          return Status::Internal("flush exceeded cycle budget");
        }
        link->Tick();
        write_back.Tick(link, stats);
        if (write_back.overflowed()) return overflow_status();
        if (combiners[c].output().free_slots() > 0) {
          combiners[c].FlushPartition(p);
          ++p;
        }
      }
    }
    // --- Drain the remaining lines.
    auto lines_pending = [&] {
      if (!write_back.idle()) return true;
      for (const auto& c : combiners) {
        if (!c.output().empty()) return true;
      }
      return false;
    };
    while (lines_pending()) {
      if (stats->cycles++ > max_cycles) {
        return Status::Internal("drain exceeded cycle budget");
      }
      link->Tick();
      write_back.Tick(link, stats);
      if (write_back.overflowed()) return overflow_status();
    }
    stats->flush_cycles += stats->cycles - flush_start_cycles;

    // --- Invariant checks: the circuit claims zero internal stalls and no
    // lost data under the forwarding policy.
    for (const auto& c : combiners) {
      stats->internal_stall_cycles += c.stall_cycles();
      if (c.lost_lines() != 0 || c.alignment_errors() != 0) {
        return Status::Internal("write combiner dropped data (bug)");
      }
    }
    return Status::OK();
  }

  uint64_t MaxCycles(size_t n) const {
    return 64 * (static_cast<uint64_t>(n) +
                 static_cast<uint64_t>(config_.fanout) * (K + 2)) +
           (uint64_t{1} << 20);
  }

  FpgaPartitionerConfig config_;
  PartitionFn fn_;
  HazardPolicy hazard_ = HazardPolicy::kForward;
  // Active input source (set by the public entry points for one Run).
  const T* in_tuples_ = nullptr;
  const KeyType* in_keys_ = nullptr;
  const CompressedColumn* in_column_ = nullptr;
};

}  // namespace fpart
