// The hash-function module of Section 4.1 (Code 3), one per tuple slot of
// the 64 B input cache line.
//
// The module is a pure pipeline: it accepts one tuple per clock and emits
// one <hash, tuple> pair per clock after a fixed latency (5 cycles for
// murmur, Table 3). Extra pipeline stages only add latency, never reduce
// throughput — which is why robust hashing is free on the FPGA.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "datagen/tuple.h"
#include "hash/hash_function.h"
#include "sim/fifo.h"

namespace fpart {

/// A tuple annotated with its partition index, as carried between the hash
/// module and the write combiner.
template <typename T>
struct HashedTuple {
  uint32_t hash;
  T tuple;
};

/// \brief Fixed-latency hash pipeline feeding one lane FIFO.
template <typename T>
class HashLane {
 public:
  /// \param fn       partitioning-attribute function (murmur or radix)
  /// \param latency  pipeline depth in cycles
  /// \param out      lane FIFO this module pushes into
  HashLane(const PartitionFn& fn, int latency, Fifo<HashedTuple<T>>* out)
      : fn_(fn), latency_(latency < 1 ? 1 : latency), out_(out) {}

  /// Advance one clock cycle, optionally accepting a new tuple.
  void Tick(std::optional<T> input) {
    pipe_.push_back(std::move(input));
    if (static_cast<int>(pipe_.size()) > latency_) {
      std::optional<T> done = std::move(pipe_.front());
      pipe_.pop_front();
      if (done.has_value()) {
        // The hash itself is computed functionally; the pipeline registers
        // model only its timing.
        out_->Push(HashedTuple<T>{Hash(*done), *done});
      }
    }
  }

  /// Tuples currently inside the pipeline (not yet in the FIFO). The feeder
  /// must reserve this many FIFO slots before accepting new input.
  size_t in_flight() const {
    size_t n = 0;
    for (const auto& slot : pipe_) n += slot.has_value() ? 1 : 0;
    return n;
  }

  bool empty() const { return in_flight() == 0; }
  int latency() const { return latency_; }

  /// Partition index of a tuple (Code 3: hash then take N LSBs).
  uint32_t Hash(const T& t) const {
    if constexpr (sizeof(t.key) == 4) {
      return fn_(t.key);
    } else {
      return fn_.Apply64(t.key);
    }
  }

 private:
  PartitionFn fn_;
  int latency_;
  Fifo<HashedTuple<T>>* out_;
  std::deque<std::optional<T>> pipe_;
};

}  // namespace fpart
