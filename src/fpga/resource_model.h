// FPGA resource-usage model (Table 2, Section 4.4).
//
// Estimates the Stratix V (5SGXEA) utilization of the partitioner as a
// function of the tuple-width configuration. The component counts follow
// the circuit structure: K×K BRAM banks of `fanout` tuples dominate BRAM;
// the murmur pipeline's multipliers dominate DSPs; the write combiner's
// steering logic dominates ALMs and shrinks quadratically as K drops.
// Constants are calibrated so that the 8192-partition configurations
// reproduce Table 2 within one percentage point.
#pragma once

#include <cstdint>

namespace fpart {

/// Device totals of the Altera Stratix V 5SGXEA7 used on HARP v1.
struct StratixVDevice {
  /// Adaptive logic modules.
  static constexpr double kLogicUnits = 234720;
  /// M20K memory blocks (2.5 KB each).
  static constexpr double kBramBlocks = 2560;
  static constexpr double kBramBlockBytes = 2560;  // 20 kbit
  /// Variable-precision DSP blocks.
  static constexpr double kDspBlocks = 256;
};

/// \brief Estimated utilization percentages for one configuration.
struct ResourceUsage {
  double logic_pct;
  double bram_pct;
  double dsp_pct;
};

/// Estimate utilization for a tuple width (8/16/32/64 bytes) and fan-out.
ResourceUsage EstimateResources(int tuple_width_bytes, uint32_t fanout);

}  // namespace fpart
