// Input staging shared by the reference cycle loop and the fast engine.
//
// One QPI cache-line read materializes one or more tuple groups (a group is
// the up-to-K tuples entering the hash lanes in one cycle). The expansion
// depends on the input layout: RID reads tuple lines directly, VRID expands
// a key line into kKeysPerCacheLine/K groups, and the compressed layout
// unpacks a FOR frame. Both simulator back ends (SimMode::kReference and
// SimMode::kFast) share this code so the functional tuple stream is
// identical by construction; only the cycle bookkeeping is implemented
// twice.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>

#include "compress/for_codec.h"
#include "datagen/tuple.h"
#include "fpga/config.h"

namespace fpart {

/// One group of up to K tuples entering the hash lanes in one cycle.
template <typename T>
struct TupleGroup {
  static constexpr int K = TupleTraits<T>::kTuplesPerCacheLine;
  std::array<T, K> tuples;
  uint8_t count = 0;
};

/// \brief Materializes the tuple-group stream of one input source.
template <typename T>
class InputStager {
 public:
  static constexpr int K = TupleTraits<T>::kTuplesPerCacheLine;
  using KeyType = decltype(T{}.key);
  static constexpr int kKeysPerCacheLine = kCacheLineSize / sizeof(KeyType);

  InputStager(const FpgaPartitionerConfig& config, const T* tuples,
              const KeyType* keys, const CompressedColumn* column)
      : config_(config), tuples_(tuples), keys_(keys), column_(column) {}

  /// Cache-line reads required to scan the input once.
  size_t TotalReads(size_t n) const {
    if (config_.layout == LayoutMode::kCompressed) {
      return column_->num_frames();
    }
    if (config_.layout == LayoutMode::kVrid) {
      return (n + kKeysPerCacheLine - 1) / kKeysPerCacheLine;
    }
    return (n + K - 1) / K;
  }

  /// Tuple groups produced by one granted cache-line read: the VRID key
  /// line expands into multiple tuple lines inside the circuit.
  size_t GroupsPerRead() const {
    switch (config_.layout) {
      case LayoutMode::kVrid:
        return static_cast<size_t>(kKeysPerCacheLine / K);
      case LayoutMode::kCompressed:
        // Variable per frame (up to kMaxKeysPerFrame keys); this value
        // only sizes the staging buffer's refill threshold.
        return 8;
      case LayoutMode::kRid:
        break;
    }
    return 1;
  }

  /// RID and VRID group streams are uniform: global group `g` always
  /// covers tuples [gK, min(n, gK+K)), so a consumer that tracks staging
  /// occupancy as a counter can materialize each group on demand with
  /// FillGroup instead of queueing TupleGroups. Compressed frames emit a
  /// partial group at every frame boundary, so they must stay queued.
  bool SupportsDirectGroups() const {
    return config_.layout != LayoutMode::kCompressed;
  }

  /// Groups produced by read `read_idx` (direct-group layouts only).
  size_t GroupsOfRead(size_t n, size_t read_idx) const {
    const size_t per_read =
        config_.layout == LayoutMode::kVrid ? kKeysPerCacheLine : K;
    const size_t base = read_idx * per_read;
    const size_t count = base < n ? (n - base < per_read ? n - base
                                                         : per_read)
                                  : 0;
    return (count + K - 1) / K;
  }

  /// Materialize global group `group_idx` into `out[0..K)`; returns the
  /// number of valid tuples (direct-group layouts only). Produces exactly
  /// the tuples MaterializeGroups would queue for this position.
  uint32_t FillGroup(size_t n, size_t group_idx, T* out) const {
    const size_t base = group_idx * K;
    const uint32_t count =
        static_cast<uint32_t>(n - base < static_cast<size_t>(K) ? n - base
                                                                : K);
    if (config_.layout == LayoutMode::kVrid) {
      for (uint32_t k = 0; k < count; ++k) {
        T t{};
        TupleTraits<T>::SetKey(&t, keys_[base + k]);
        SetPayloadId(&t, base + k);  // the virtual record id
        out[k] = t;
      }
    } else {
      for (uint32_t k = 0; k < count; ++k) out[k] = tuples_[base + k];
    }
    return count;
  }

  /// Materialize the tuple groups of cache line `read_idx` into `staging`.
  void MaterializeGroups(size_t n, size_t read_idx,
                         std::deque<TupleGroup<T>>* staging) const {
    if (config_.layout == LayoutMode::kCompressed) {
      // The decompressor lane: unpack one frame (one cycle in hardware)
      // into key groups, appending virtual record ids.
      uint32_t scratch[kMaxKeysPerFrame];
      const int count = column_->DecodeFrame(read_idx, scratch);
      const uint64_t base = column_->frame_offset(read_idx);
      TupleGroup<T> group;
      for (int k = 0; k < count; ++k) {
        T t{};
        TupleTraits<T>::SetKey(&t, scratch[k]);
        SetPayloadId(&t, base + k);
        group.tuples[group.count++] = t;
        if (group.count == K) {
          staging->push_back(group);
          group = TupleGroup<T>{};
        }
      }
      if (group.count > 0) staging->push_back(group);
      return;
    }
    if (config_.layout == LayoutMode::kVrid) {
      size_t base = read_idx * kKeysPerCacheLine;
      for (size_t g = 0; g < GroupsPerRead(); ++g) {
        TupleGroup<T> group;
        for (int k = 0; k < K; ++k) {
          size_t idx = base + g * K + k;
          if (idx >= n) break;
          T t{};
          TupleTraits<T>::SetKey(&t, keys_[idx]);
          SetPayloadId(&t, idx);  // the virtual record id
          group.tuples[group.count++] = t;
        }
        if (group.count > 0) staging->push_back(group);
      }
    } else {
      size_t base = read_idx * K;
      TupleGroup<T> group;
      for (int k = 0; k < K; ++k) {
        if (base + k >= n) break;
        group.tuples[group.count++] = tuples_[base + k];
      }
      if (group.count > 0) staging->push_back(group);
    }
  }

 private:
  const FpgaPartitionerConfig& config_;
  const T* tuples_;
  const KeyType* keys_;
  const CompressedColumn* column_;
};

}  // namespace fpart
