#include "fpga/config.h"

namespace fpart {

const char* OutputModeName(OutputMode mode) {
  return mode == OutputMode::kHist ? "HIST" : "PAD";
}

const char* LayoutModeName(LayoutMode mode) {
  switch (mode) {
    case LayoutMode::kRid:
      return "RID";
    case LayoutMode::kVrid:
      return "VRID";
    case LayoutMode::kCompressed:
      return "COMPRESSED";
  }
  return "unknown";
}

const char* SimModeName(SimMode mode) {
  return mode == SimMode::kReference ? "reference" : "fast";
}

}  // namespace fpart
