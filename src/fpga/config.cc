#include "fpga/config.h"

namespace fpart {

const char* OutputModeName(OutputMode mode) {
  return mode == OutputMode::kHist ? "HIST" : "PAD";
}

const char* LayoutModeName(LayoutMode mode) {
  switch (mode) {
    case LayoutMode::kRid:
      return "RID";
    case LayoutMode::kVrid:
      return "VRID";
    case LayoutMode::kCompressed:
      return "COMPRESSED";
  }
  return "unknown";
}

const char* SimModeName(SimMode mode) {
  switch (mode) {
    case SimMode::kReference:
      return "reference";
    case SimMode::kFast:
      return "fast";
    case SimMode::kAnalytical:
      return "analytical";
  }
  return "unknown";
}

bool ParseSimMode(const std::string& name, SimMode* mode) {
  if (name == "reference") {
    *mode = SimMode::kReference;
  } else if (name == "fast") {
    *mode = SimMode::kFast;
  } else if (name == "analytical") {
    *mode = SimMode::kAnalytical;
  } else {
    return false;
  }
  return true;
}

}  // namespace fpart
