// Fast execution path of the cycle simulator (SimMode::kFast).
//
// The reference loop in fpga/partitioner.h advances the circuit strictly
// one module Tick() at a time through std::deque staging and per-lane
// std::optional pops. That is the clearest possible transcription of the
// VHDL, but the pipeline spends almost all cycles in a hazard-free steady
// state of one line in / one line out (Section 4), so most of that per-Tick
// machinery re-derives the same decisions every cycle.
//
// FastCircuit re-implements the *identical* per-cycle semantics over flat
// state and advances the simulation in batched steady-state windows: while
// tuples remain to feed, the circuit is provably busy, so the window runs
// without re-evaluating the global drain predicate; the loop drops back to
// single-cycle stepping (and the fully checked epilogue: tail feed, flush,
// drain) the moment a window expires. Hazards, QPI back-pressure and PAD
// overflow are handled inside the kernel with the same cycle-accurate
// behaviour as the reference modules. The flat layout is chosen for the
// host cache, not the circuit:
//  * Each lane's hash delay line and input FIFO collapse into ONE ring of
//    hashed tuples per lane — entries become visible `hash_latency` cycles
//    after insertion (an arrival counter per (cycle mod latency, lane)
//    slot), because a fixed-latency pipeline feeding a FIFO is itself a
//    FIFO. Hashing is pure, so computing it at insert instead of at
//    emergence yields bit-identical values.
//  * All per-lane pipeline registers live in one cache-aligned Lane
//    struct instead of 20 parallel vectors.
//  * The K BRAM banks of one (combiner, partition) address are contiguous
//    (one cache line for 8 B tuples), so a line completion reads a single
//    line instead of K locations 64 KB apart, and a completed line is
//    assembled directly into its output-FIFO ring slot (`head + count` is
//    invariant under pops, so the slot picked at completion time is the
//    slot the next-cycle push would use).
//
// Two deliberate equivalences replace the clocked BRAM objects:
//  * The fill-rate BRAM's 2-cycle old-data read is captured at pop time;
//    the two intervening stage-2 writes are exactly the prev1/prev2
//    forwarding cases of Code 4, so the captured value is used iff the
//    reference's delivered BRAM value would be.
//  * The 8-bank line read issued at line completion is copied into the
//    output slot at completion time; the reference's 1-cycle bank read
//    delivers the same captured values one cycle later.
//
// The differential harness (tests/sim_fastpath_test.cc) asserts identical
// CycleStats, cycle counts, histograms and output bytes against the
// reference loop across the full mode/layout/hazard/distribution matrix.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/status.h"
#include "datagen/partitioned_output.h"
#include "datagen/tuple.h"
#include "fpga/config.h"
#include "fpga/hash_lane.h"
#include "fpga/staging.h"
#include "fpga/write_combiner.h"
#include "hash/hash_function.h"
#include "qpi/qpi_link.h"
#include "sim/stats.h"

namespace fpart {

/// \brief Flat-state, batched-window implementation of one simulator pass.
///
/// One instance executes exactly one pass (histogram or partition), like
/// the reference loop constructs fresh module objects per pass.
template <typename T>
class FastCircuit {
 public:
  static constexpr int K = TupleTraits<T>::kTuplesPerCacheLine;

  FastCircuit(const FpgaPartitionerConfig& config, const PartitionFn& fn,
              HazardPolicy hazard, const InputStager<T>& stager)
      : fn_(fn),
        hazard_(hazard),
        stager_(stager),
        fanout_(config.fanout),
        lat_(config.hash_latency() < 1 ? 1u
                                       : static_cast<uint32_t>(
                                             config.hash_latency())),
        in_depth_(config.lane_fifo_depth),
        out_depth_(config.output_fifo_depth),
        groups_per_read_(stager.GroupsPerRead()),
        direct_(stager.SupportsDirectGroups()),
        arrival_mask_(lat_, 0),
        ring_(static_cast<size_t>(K) * in_depth_) {}

  /// HIST pass 1: scan the relation and build per-lane histograms
  /// (reference: FpgaPartitioner::HistogramPass).
  /// `flatten` pulls the per-cycle helpers (FeedCycle in particular) into
  /// the loop body: one call per simulated cycle is measurable overhead.
#if defined(__GNUC__)
  __attribute__((flatten))
#endif
  Status HistogramPass(size_t n, uint64_t max_cycles, QpiLink* link,
                       CycleStats* stats,
                       std::vector<std::vector<uint64_t>>* lane_hist) {
    lane_hist->assign(K, std::vector<uint64_t>(fanout_, 0));
    const size_t total_reads = stager_.TotalReads(n);
    while (HistogramBusy(n)) {
      // Steady window: while tuples remain to feed, the pass stays busy.
      const uint64_t w = fed_ < n ? (n - fed_ + K - 1) / K : 1;
      for (uint64_t i = 0; i < w; ++i) {
        if (stats->cycles++ > max_cycles) {
          return Status::Internal("histogram pass exceeded cycle budget");
        }
        link->Tick();
        // Histogram sink: one tuple per lane per cycle.
        for (int c = 0; c < K; ++c) {
          Lane& l = lanes_[c];
          if (l.count > 0) {
            ++(*lane_hist)[c][ring_[c * in_depth_ + l.head].hash];
            l.head = l.head + 1 == in_depth_ ? 0 : l.head + 1;
            if (l.count + l.inflight == in_depth_) --full_lanes_;
            --l.count;
          }
        }
        FeedCycle(n, total_reads, link, stats);
      }
    }
    return CheckInvariants();
  }

  /// The writing pass (PAD's only pass / HIST's second pass) including the
  /// flush and drain epilogue (reference: FpgaPartitioner::PartitionPass).
#if defined(__GNUC__)
  __attribute__((flatten))
#endif
  Status PartitionPass(size_t n, uint64_t max_cycles, QpiLink* link,
                       CycleStats* stats, PartitionedOutput<T>* output) {
    AllocateCombinerState();
    const size_t total_reads = stager_.TotalReads(n);

    // --- Main streaming loop, in batched steady-state windows.
    while (PartitionBusy(n)) {
      const uint64_t w = fed_ < n ? (n - fed_ + K - 1) / K : 1;
      for (uint64_t i = 0; i < w; ++i) {
        if (stats->cycles++ > max_cycles) {
          return Status::Internal("partition pass exceeded cycle budget");
        }
        link->Tick();
        WriteBackTick(link, stats, output);
        if (overflowed_) return OverflowStatus();
        CombinerTick();
        FeedCycle(n, total_reads, link, stats);
      }
    }

    // --- Flush: one (combiner, partition) BRAM address per cycle.
    const uint64_t flush_start_cycles = stats->cycles;
    for (int c = 0; c < K; ++c) {
      uint32_t p = 0;
      while (p < fanout_) {
        if (stats->cycles++ > max_cycles) {
          return Status::Internal("flush exceeded cycle budget");
        }
        link->Tick();
        WriteBackTick(link, stats, output);
        if (overflowed_) return OverflowStatus();
        if (lanes_[c].out_count < out_depth_) {
          FlushPartition(c, p);
          ++p;
        }
      }
    }
    // --- Drain the remaining lines.
    while (wb_valid_ || AnyOutputPending()) {
      if (stats->cycles++ > max_cycles) {
        return Status::Internal("drain exceeded cycle budget");
      }
      link->Tick();
      WriteBackTick(link, stats, output);
      if (overflowed_) return OverflowStatus();
    }
    stats->flush_cycles += stats->cycles - flush_start_cycles;

    for (int c = 0; c < K; ++c) {
      stats->internal_stall_cycles += lanes_[c].stall_cycles;
    }
#if defined(__SSE2__)
    _mm_sfence();  // order the streaming stores before the caller reads
#endif
    return CheckInvariants();
  }

 private:
  /// All mutable per-lane state: the merged delay-line/FIFO ring cursors,
  /// the Code 3/4 pipeline registers, and the output-FIFO cursors.
  struct alignas(64) Lane {
    // Ring occupancy: `count` visible entries starting at `head`, then
    // `inflight` entries still inside the hash pipeline.
    uint32_t head = 0;
    uint32_t count = 0;
    uint32_t inflight = 0;
    // Stage registers (stage 1 = popped last cycle, stage 2 = the cycle
    // before; prev1/prev2 = completions of the last two cycles).
    uint32_t s1_h = 0, s2_h = 0;
    // The five valid bits sit adjacent so the quiescence test is one load.
    uint8_t s1_v = 0, s2_v = 0;
    uint8_t p1_v = 0, p2_v = 0;
    uint8_t asm_v = 0;
    uint8_t s1_f = 0, s2_f = 0;
    uint8_t p1_b = 0, p2_b = 0;
    uint32_t p1_h = 0, p2_h = 0;
    T s1_t{}, s2_t{};
    // (asm_v above: a line assembled this cycle, pushed downstream at next
    // cycle's stage 3 — the data already sits in the output ring slot.)
    // Output FIFO cursors (lines live in the shared out_line_ array).
    uint32_t out_head = 0, out_count = 0;
    uint64_t stall_cycles = 0;
  };

  // ---- Lane front end -----------------------------------------------------

  uint32_t HashOf(const T& t) const {
    if constexpr (sizeof(t.key) == 4) {
      return fn_(t.key);
    } else {
      return fn_.Apply64(t.key);
    }
  }

  /// Per-cycle input machinery (reference: FpgaPartitioner::FeedCycle).
  /// Entries inserted here surface `lat_` cycles later — the emergence
  /// step below credits `count` from the arrival slot written at insert
  /// time, which is exactly the reference's HashLane shift register.
  void FeedCycle(size_t n, size_t total_reads, QpiLink* link,
                 CycleStats* stats) {
    // RID/VRID group streams are uniform (InputStager::SupportsDirectGroups),
    // so staging occupancy is just a counter and each group is materialized
    // on demand at feed time — no deque, no TupleGroup copy. Compressed
    // frames produce irregular group boundaries and keep the queued path.
    const size_t occupancy = direct_ ? staged_ : staging_.size();
    if (reads_done_ < total_reads && occupancy < 2 * groups_per_read_) {
      if (link->TryRead()) {
        if (direct_) {
          staged_ += stager_.GroupsOfRead(n, reads_done_);
        } else {
          stager_.MaterializeGroups(n, reads_done_, &staging_);
        }
        ++reads_done_;
        ++stats->read_lines;
      } else {
        ++stats->backpressure_cycles;
        ++stats->read_stall_cycles;
      }
    }
    // Emergence: tuples inserted lat_ cycles ago become visible. A group
    // always fills lanes 0..count-1, so one arrival slot is a bitmask of
    // low bits (and usually zero: no feed happened lat_ cycles ago).
    uint32_t arrived = arrival_mask_[pipe_pos_];
    if (arrived) {
      arrival_mask_[pipe_pos_] = 0;
      for (int c = 0; arrived; ++c, arrived >>= 1) {
        ++lanes_[c].count;
        --lanes_[c].inflight;
      }
    }
    // Feed-ready: a slot must be free in every lane ring. (The reference
    // compares free FIFO slots against the pipeline's in-flight count;
    // the merged ring holds both, so that is one capacity check, and
    // `full_lanes_` — maintained at insert and pop — counts the lanes
    // failing it so the per-cycle test is one compare.)
    const bool have_group = direct_ ? staged_ > 0 : !staging_.empty();
    if (have_group && full_lanes_ == 0) {
      if (direct_) {
        T tmp[K];
        const uint32_t cnt = stager_.FillGroup(n, next_group_, tmp);
        for (uint32_t c = 0; c < cnt; ++c) {
          Lane& l = lanes_[c];
          uint32_t pos = l.head + l.count + l.inflight;
          if (pos >= in_depth_) pos -= in_depth_;
          const T& t = tmp[c];
          ring_[c * in_depth_ + pos] = HashedTuple<T>{HashOf(t), t};
          if (l.count + ++l.inflight == in_depth_) ++full_lanes_;
        }
        arrival_mask_[pipe_pos_] = (1u << cnt) - 1;
        fed_ += cnt;
        ++stats->input_lines;
        --staged_;
        ++next_group_;
      } else {
        const TupleGroup<T>& group = staging_.front();
        for (int c = 0; c < group.count; ++c) {
          Lane& l = lanes_[c];
          uint32_t pos = l.head + l.count + l.inflight;
          if (pos >= in_depth_) pos -= in_depth_;
          const T& t = group.tuples[c];
          ring_[c * in_depth_ + pos] = HashedTuple<T>{HashOf(t), t};
          if (l.count + ++l.inflight == in_depth_) ++full_lanes_;
        }
        arrival_mask_[pipe_pos_] = (1u << group.count) - 1;
        fed_ += group.count;
        ++stats->input_lines;
        staging_.pop_front();
      }
    }
    pipe_pos_ = pipe_pos_ + 1 == lat_ ? 0 : pipe_pos_ + 1;
  }

  // ---- Write combiners ----------------------------------------------------

  void AllocateCombinerState() {
    fill_.assign(static_cast<size_t>(K) * fanout_, 0);
    banks_.assign(static_cast<size_t>(K) * K * fanout_, T{});
    out_line_.assign(static_cast<size_t>(K) * out_depth_, CombinedLine<T>{});
  }

  // Banks laid out line-major: the K banks of one (combiner, partition)
  // address are contiguous.
  T* BanksOf(int c, uint32_t p) {
    return &banks_[(static_cast<size_t>(c) * fanout_ + p) * K];
  }

  /// The next free output ring slot of lane `c`. `head + count` is
  /// invariant under write-back pops, so a slot picked at assembly time is
  /// still the push position one cycle later.
  CombinedLine<T>& OutSlot(int c) {
    const Lane& l = lanes_[c];
    uint32_t pos = l.out_head + l.out_count;
    if (pos >= out_depth_) pos -= out_depth_;
    return out_line_[c * out_depth_ + pos];
  }

  /// One write-combiner clock for every lane (reference:
  /// WriteCombiner::Tick, stages 3 → 0 → 2, then register shift).
  void CombinerTick() {
    for (int c = 0; c < K; ++c) {
      Lane& l = lanes_[c];
      // Light paths for the dominant gated patterns. Stage registers hold
      // garbage whenever their valid bit is clear (every read below is
      // guarded), so a gated lane only needs the valid-register shifts:
      //  * pipeline empty (s1/s2/asm clear) and no pop possible (empty
      //    ring, or no output-FIFO room `out_depth - out_count > 0`):
      //    nothing changes except the completion registers aging out;
      //  * only s1 valid and no pop possible (room must exceed the one
      //    in-flight line): s1 moves to s2, completions age.
      // Stall accounting is unaffected: a pop blocked on room never
      // reaches the hazard check in the full path either.
      const uint8_t pipe_v = l.s1_v | l.s2_v | l.asm_v;
      if (pipe_v == 0 &&
          (l.count == 0 || l.out_count >= out_depth_)) {
        if (l.p1_v | l.p2_v) {
          l.p2_v = l.p1_v;
          l.p2_h = l.p1_h;
          l.p2_b = l.p1_b;
          l.p1_v = 0;
        }
        continue;
      }
      if (pipe_v == 1 && l.s2_v == 0 && l.asm_v == 0 &&
          (l.count == 0 || l.out_count + 1 >= out_depth_)) {
        l.s2_v = 1;
        l.s2_h = l.s1_h;
        l.s2_f = l.s1_f;
        l.s2_t = l.s1_t;
        l.s1_v = 0;
        l.p2_v = l.p1_v;
        l.p2_h = l.p1_h;
        l.p2_b = l.p1_b;
        l.p1_v = 0;
        continue;
      }
      uint8_t* fill = &fill_[static_cast<size_t>(c) * fanout_];
      // Work on local copies: the fill-rate array is uint8_t, so stores
      // through it would otherwise force the compiler to reload every
      // lane field (char aliases everything). All lane state is written
      // back exactly once at the end of the iteration.
      const uint8_t s1_v = l.s1_v, s2_v = l.s2_v;
      const uint32_t s1_h = l.s1_h, s2_h = l.s2_h;
      const uint8_t s1_f = l.s1_f, s2_f = l.s2_f;
      const uint8_t p1_v = l.p1_v, p2_v = l.p2_v;
      const uint32_t p1_h = l.p1_h, p2_h = l.p2_h;
      const uint8_t p1_b = l.p1_b, p2_b = l.p2_b;
      uint32_t head = l.head, count = l.count, out_count = l.out_count;

      // --- Stage 3: the line assembled last cycle goes downstream (its
      // data already sits in the ring slot; publishing is one increment).
      if (l.asm_v) {
        if (out_count >= out_depth_) {
          ++fifo_overflows_;  // impossible: slots are reserved
        } else {
          if (out_count == 0) out_mask_ |= 1u << c;
          ++out_count;
        }
      }
      uint8_t asm_v = 0;

      // --- Stage 0: pop a new tuple and capture its fill rate (the BRAM
      // old-data read: state before this cycle's stage-2 write lands).
      bool in_valid = false;
      uint32_t in_hash = 0;
      uint8_t in_fill = 0;
      T in_tup{};
      const uint32_t inflight_lines =
          static_cast<uint32_t>(s1_v) + static_cast<uint32_t>(s2_v);
      if (count > 0 && out_depth_ - out_count > inflight_lines) {
        const HashedTuple<T>& front = ring_[c * in_depth_ + head];
        if (hazard_ == HazardPolicy::kStall &&
            ((s1_v && s1_h == front.hash) || (s2_v && s2_h == front.hash))) {
          ++l.stall_cycles;
        } else {
          in_valid = true;
          in_hash = front.hash;
          in_tup = front.tuple;
          head = head + 1 == in_depth_ ? 0 : head + 1;
          if (count + l.inflight == in_depth_) --full_lanes_;
          --count;
          in_fill = fill[in_hash];
          // The popped tuple's bank line is written two cycles from now
          // (stage 2) and its fill byte is re-read next cycle if the next
          // pop hits the same partition — both random accesses into the
          // multi-MB bank array, so hide the latency while the pipeline
          // registers shift.
          __builtin_prefetch(BanksOf(c, in_hash), 1, 1);
          if (count > 0) {
            __builtin_prefetch(&fill[ring_[c * in_depth_ + head].hash], 0, 1);
          }
        }
      }

      // --- Stage 2: the tuple popped two cycles ago receives its fill
      // rate (captured or forwarded) and is steered into a bank.
      bool comp_valid = false;
      uint32_t comp_hash = 0;
      uint8_t comp_bank = 0;
      if (s2_v) {
        const uint32_t h = s2_h;
        uint32_t which;
        if (hazard_ == HazardPolicy::kForward && p1_v && h == p1_h) {
          which = (p1_b + 1u) & (K - 1);
        } else if (hazard_ == HazardPolicy::kForward && p2_v && h == p2_h) {
          which = (p2_b + 1u) & (K - 1);
        } else {
          which = s2_f;
        }
        which &= static_cast<uint32_t>(K - 1);
        T* bank = BanksOf(c, h);
        if (which == static_cast<uint32_t>(K - 1)) {
          // Line complete: reset the fill rate, store the closing tuple,
          // then capture all K banks into the output slot for next
          // cycle's stage 3 (the 1-cycle bank read of the reference).
          fill[h] = 0;
          bank[K - 1] = l.s2_t;
          uint32_t pos = l.out_head + out_count;
          if (pos >= out_depth_) pos -= out_depth_;
          CombinedLine<T>& line = out_line_[c * out_depth_ + pos];
          line.partition = h;
          line.valid_count = K;
          for (int b = 0; b < K; ++b) line.tuples[b] = bank[b];
          asm_v = 1;
        } else {
          fill[h] = static_cast<uint8_t>(which + 1);
          bank[which] = l.s2_t;
        }
        comp_valid = true;
        comp_hash = h;
        comp_bank = static_cast<uint8_t>(which);
      }

      // --- Shift the pipeline registers; single write-back of the lane.
      l.head = head;
      l.count = count;
      l.out_count = out_count;
      l.asm_v = asm_v;
      l.s2_v = s1_v;
      l.s2_h = s1_h;
      l.s2_f = s1_f;
      l.s2_t = l.s1_t;
      l.s1_v = in_valid ? 1 : 0;
      l.s1_h = in_hash;
      l.s1_f = in_fill;
      l.s1_t = in_tup;
      l.p2_v = p1_v;
      l.p2_h = p1_h;
      l.p2_b = p1_b;
      l.p1_v = comp_valid ? 1 : 0;
      l.p1_h = comp_hash;
      l.p1_b = comp_bank;
    }
  }

  /// Flush step (reference: WriteCombiner::FlushPartition). The caller
  /// guarantees output-FIFO room.
  void FlushPartition(int c, uint32_t p) {
    uint8_t* fill = &fill_[static_cast<size_t>(c) * fanout_];
    const uint8_t count = fill[p];
    if (count == 0) return;
    const T* bank = BanksOf(c, p);
    CombinedLine<T>& line = OutSlot(c);
    line.partition = p;
    line.valid_count = count;
    for (int b = 0; b < K; ++b) {
      line.tuples[b] = b < count ? bank[b] : MakeDummyTuple<T>();
    }
    fill[p] = 0;
    if (lanes_[c].out_count == 0) out_mask_ |= 1u << c;
    ++lanes_[c].out_count;
  }

  // ---- Write-back ---------------------------------------------------------

  /// One write-back clock (reference: WriteBackModule::Tick).
  void WriteBackTick(QpiLink* link, CycleStats* stats,
                     PartitionedOutput<T>* out) {
    if (!wb_valid_ && !overflowed_ && out_mask_ != 0) {
      // Round-robin pick: rotate the occupancy mask so rr_cursor_ is bit 0
      // and take the lowest set bit — same lane the reference scan finds.
      const uint32_t full = (1u << K) - 1;
      const uint32_t rot =
          ((out_mask_ >> rr_cursor_) | (out_mask_ << (K - rr_cursor_))) & full;
      const size_t idx =
          (rr_cursor_ + static_cast<size_t>(__builtin_ctz(rot))) & (K - 1);
      Lane& l = lanes_[idx];
      wb_line_ = out_line_[idx * out_depth_ + l.out_head];
      l.out_head = l.out_head + 1 == out_depth_ ? 0 : l.out_head + 1;
      if (--l.out_count == 0) out_mask_ &= ~(1u << idx);
      rr_cursor_ = idx + 1 == static_cast<size_t>(K) ? 0 : idx + 1;
      PartitionInfo& part = out->part(wb_line_.partition);
      if (part.written_cls >= part.capacity_cls) {
        overflowed_ = true;
        overflow_partition_ = wb_line_.partition;
        return;
      }
      wb_dest_ = part.base_cl + part.written_cls;
      ++part.written_cls;
      part.num_tuples += wb_line_.valid_count;
      wb_valid_ = true;
    }
    if (wb_valid_) {
      if (link->TryWrite()) {
        uint8_t* dst = out->line(wb_dest_);
#if defined(__SSE2__)
        // The PAD output buffer is far larger than cache and each line is
        // written once and not re-read here: streaming stores skip the
        // read-for-ownership of the (cache-line aligned) destination.
        const uint8_t* src =
            reinterpret_cast<const uint8_t*>(wb_line_.tuples.data());
        for (int b = 0; b < static_cast<int>(kCacheLineSize / 16); ++b) {
          _mm_stream_si128(
              reinterpret_cast<__m128i*>(dst + 16 * b),
              _mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(src + 16 * b)));
        }
#else
        std::memcpy(dst, wb_line_.tuples.data(), kCacheLineSize);
#endif
        ++stats->output_lines;
        stats->dummy_tuples += CombinedLine<T>::kTuples - wb_line_.valid_count;
        wb_valid_ = false;
      } else {
        ++stats->backpressure_cycles;
        ++stats->write_stall_cycles;
      }
    }
  }

  // ---- Predicates and invariants ------------------------------------------

  bool HistogramBusy(size_t n) const {
    if (fed_ < n) return true;
    for (int c = 0; c < K; ++c) {
      if (lanes_[c].count != 0 || lanes_[c].inflight != 0) return true;
    }
    return false;
  }

  bool PartitionBusy(size_t n) const {
    if (fed_ < n || wb_valid_) return true;
    for (int c = 0; c < K; ++c) {
      const Lane& l = lanes_[c];
      if (l.count != 0 || l.inflight != 0) return true;
      if (l.s1_v || l.s2_v || l.asm_v) return true;
      if (l.out_count != 0) return true;
    }
    return false;
  }

  bool AnyOutputPending() const {
    for (int c = 0; c < K; ++c) {
      if (lanes_[c].out_count != 0) return true;
    }
    return false;
  }

  Status OverflowStatus() const {
    return Status::PartitionOverflow(
        "PAD-mode partition " + std::to_string(overflow_partition_) +
        " overflowed; retry in HIST mode or fall back to the CPU "
        "partitioner (Section 4.5)");
  }

  Status CheckInvariants() const {
    if (fifo_overflows_ != 0) {
      return Status::Internal("write combiner dropped data (bug)");
    }
    return Status::OK();
  }

  // ---- State --------------------------------------------------------------

  const PartitionFn fn_;
  const HazardPolicy hazard_;
  const InputStager<T>& stager_;
  const uint32_t fanout_;
  const uint32_t lat_;
  const uint32_t in_depth_;
  const uint32_t out_depth_;
  const size_t groups_per_read_;
  const bool direct_;

  std::array<Lane, K> lanes_{};
  // arrival_mask_[cycle mod lat_]: bitmask of lanes fed at that cycle
  // position (always the low `count` bits of the group), credited to
  // `count` when the position comes around again.
  std::vector<uint32_t> arrival_mask_;
  uint32_t pipe_pos_ = 0;
  // Lanes whose ring is at capacity (count + inflight == depth).
  uint32_t full_lanes_ = 0;
  // Merged hash-pipeline + lane-FIFO rings, one segment per lane.
  std::vector<HashedTuple<T>> ring_;

  // Combiner state (allocated by PartitionPass only).
  std::vector<uint8_t> fill_;
  std::vector<T> banks_;
  std::vector<CombinedLine<T>> out_line_;

  // Write-back registers.
  CombinedLine<T> wb_line_{};
  bool wb_valid_ = false;
  uint64_t wb_dest_ = 0;
  size_t rr_cursor_ = 0;
  // Bit c set iff lanes_[c].out_count > 0.
  uint32_t out_mask_ = 0;
  bool overflowed_ = false;
  uint32_t overflow_partition_ = 0;

  // Input staging. Direct-group layouts track only the occupancy counter
  // `staged_` and the next global group index; the deque serves the
  // compressed layout's irregular frame boundaries.
  std::deque<TupleGroup<T>> staging_;
  size_t staged_ = 0;
  size_t next_group_ = 0;
  size_t reads_done_ = 0;
  uint64_t fed_ = 0;

  uint64_t fifo_overflows_ = 0;
};

}  // namespace fpart
