// Job model of the partitioning service runtime (docs/architecture.md,
// "svc layer"): the request types concurrent clients submit, the per-job
// lifecycle record the scheduler tracks, and the completion handle a
// client waits on.
//
// The paper's Section 2/5 argument is that the QPI-attached FPGA is a
// *shared co-processor*: it partitions at bandwidth speed while the CPU
// cores stay free for other queries. The svc runtime makes that concrete —
// many clients submit PartitionJob/JoinJob requests, and the scheduler
// decides per job who runs it (FPGA, CPU SIMD path, or the hybrid join)
// using the Section 4.6 cost model plus live queue state.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/status.h"
#include "core/engine.h"
#include "datagen/relation.h"
#include "datagen/tuple.h"

namespace fpart::svc {

using JobId = uint64_t;

/// What a job asks the service to do.
enum class JobKind {
  /// Partition one relation (the service's bread-and-butter request).
  kPartition,
  /// Equi-join two relations (CPU radix join or the hybrid CPU+FPGA join).
  kJoin,
  /// Layout maintenance on behalf of the streaming store (stream/
  /// repartition.h): split a hot partition or merge cold buddies. Always
  /// CPU-placed; competes through the same WFQ classes as foreground
  /// jobs (default kBestEffort), which is the whole point — rebalance
  /// work must not starve or be starved arbitrarily.
  kRebalance,
};

/// Which backend a job was placed on.
enum class Backend {
  /// Host CPU: fused-SIMD partitioner / radix join.
  kCpu,
  /// The (simulated) FPGA circuit, under an exclusive device lease.
  kFpga,
  /// Joins only: FPGA partitions both relations under the lease, the CPU
  /// runs build+probe after the lease is released (Section 5).
  kHybrid,
};

/// \brief Priority class of a job (weighted fair queueing, job_queue.h).
/// Interactive tenants outweigh batch, batch outweighs best-effort; the
/// scheduler's class weights decide the exact service shares.
enum class JobClass {
  kInteractive = 0,
  kBatch = 1,
  kBestEffort = 2,
};

inline constexpr size_t kNumJobClasses = 3;

const char* JobKindName(JobKind kind);
const char* BackendName(Backend backend);
const char* JobClassName(JobClass cls);

/// Terminal state of a job.
enum class JobState {
  kQueued,
  kRunning,
  kCompleted,
  /// The backend returned a non-OK, non-cancelled Status.
  kFailed,
  kCancelled,
  /// Rejected at admission: the bounded queue was full (backpressure).
  kShed,
  /// Rejected at admission: the SLO-aware controller predicted the job
  /// would miss its deadline or its class latency SLO (Status::SloError,
  /// svc/admission.h). Unlike kShed this is a feasibility verdict, not an
  /// occupancy one — the queue may have had room.
  kRejected,
};

const char* JobStateName(JobState state);

/// \brief A partitioning request as a service job. The input relation is
/// borrowed — it must outlive the job — which models the service acting on
/// resident tables rather than per-request copies.
struct PartitionJobSpec {
  const Relation<Tuple8>* input = nullptr;
  /// Request knobs. `engine`, `pool` and `cancel` are owned by the
  /// scheduler: placement decides the engine, and the per-job cancel token
  /// is wired in by the executor.
  PartitionRequest request;
};

/// \brief An equi-join request as a service job (R ⋈ S, Tuple8 keys).
struct JoinJobSpec {
  const Relation<Tuple8>* r = nullptr;
  const Relation<Tuple8>* s = nullptr;
  uint32_t fanout = 2048;
  HashMethod hash = HashMethod::kMurmur;
};

/// \brief A layout-maintenance request as a service job. The scheduler
/// treats the work as an opaque CPU-side function so svc stays independent
/// of the stream layer; the stream's RepartitionManager owns the semantics
/// (snapshot + rebuild a bucket, see stream/repartition.h).
struct RebalanceJobSpec {
  /// The maintenance work. Receives the job's cancel token (checked
  /// cooperatively; return Status::Cancelled when honoured).
  std::function<Status(const std::atomic<bool>* cancel)> work;
  /// Tuples the rebuild will touch — the WFQ service demand and the basis
  /// of the CPU placement estimate.
  uint64_t cost_tuples = 1;
};

/// Sentinel: the scheduler assigns the arrival sequence itself.
inline constexpr uint64_t kAutoArrivalSeq =
    std::numeric_limits<uint64_t>::max();

struct JobOutcome;

/// \brief Per-job scheduling options.
struct JobOptions {
  /// Relative deadline in seconds from submission (0 = none). The FPGA
  /// arbiter and the live-mode queue order earliest-deadline-first, FIFO
  /// among equal deadlines.
  double deadline_seconds = 0.0;
  /// Pin the job to one backend (skips the placement policy). Used by the
  /// interference bench and by clients that know better.
  std::optional<Backend> pinned;
  /// Priority class for weighted fair queueing. Classes split the live-mode
  /// service capacity in proportion to SchedulerConfig::class_weights;
  /// within a class, jobs still run earliest-deadline-first then FIFO.
  JobClass job_class = JobClass::kBatch;
  /// Deterministic mode only: the caller-assigned arrival sequence number.
  /// Clients must hand the scheduler a contiguous 0..N-1 numbering (any
  /// submission interleaving); placement is computed strictly in this
  /// order, which is what makes a multi-client replay bit-deterministic.
  uint64_t arrival_seq = kAutoArrivalSeq;
  /// Deterministic mode only: the job's arrival time on the workload's
  /// virtual clock (seconds). Placement charges queueing delay against
  /// this clock instead of the wall clock.
  double virtual_arrival_seconds = 0.0;
  /// Invoked exactly once when the job reaches a terminal state —
  /// completed, failed, cancelled, or shed at admission — after the
  /// outcome is published and handle waiters are woken. Runs on the
  /// completing thread (a worker, or the submitting thread for shed
  /// jobs); keep it cheap and never call back into the scheduler from it.
  /// The cluster layer (dist/cluster.h) uses this for cross-node
  /// in-flight accounting.
  std::function<void(const JobOutcome&)> on_complete;
};

/// \brief Completion record of a job, filled exactly once.
struct JobOutcome {
  JobState state = JobState::kQueued;
  Status status;
  Backend backend = Backend::kCpu;
  /// FNV-1a over the per-partition tuple counts (partition jobs) or the
  /// join's match checksum — backend-independent for a fixed hash config,
  /// so replays can assert bit-identical results across runs.
  uint64_t checksum = 0;
  uint64_t matches = 0;  ///< joins only
  /// Wall seconds queued (submit -> execution start) and executing.
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  /// Model/simulated seconds of the device phase (FPGA/hybrid jobs).
  double device_seconds = 0.0;
  /// Deterministic mode only: the job's latency on the *virtual* clock —
  /// queue wait (virtual arrival -> virtual start on the placed backend)
  /// and modeled service time. Together they are the replayed stream's
  /// noise-free latency, a pure function of the job stream (what
  /// bench/ext_cluster.cc reports percentiles over); both 0.0 in live
  /// mode, where the wall-clock fields above are the measurement.
  double virtual_queue_seconds = 0.0;
  double virtual_run_seconds = 0.0;
  /// SLO admission (SloConfig::enabled): the corrected end-to-end latency
  /// the controller predicted when it decided this job, and the budget it
  /// was held to (min of the job deadline and the class SLO; 0 when
  /// neither applies, in which case the job is always admitted). Admitted
  /// jobs satisfy predicted <= budget by construction; a kRejected
  /// outcome carries the violating prediction. Both 0 when admission is
  /// disabled.
  double admit_predicted_seconds = 0.0;
  double admit_budget_seconds = 0.0;
};

/// \brief Internal lifecycle record shared by scheduler, executor and the
/// client-facing handle. Lives until the last handle drops.
struct JobRecord {
  JobId id = 0;
  uint64_t seq = 0;  ///< arrival order (assigned or caller-provided)
  JobKind kind = JobKind::kPartition;
  PartitionJobSpec partition;
  JoinJobSpec join;
  RebalanceJobSpec rebalance;
  JobOptions opts;

  /// Priority class (copied from opts at submission; queue ordering key).
  JobClass cls = JobClass::kBatch;
  /// Service demand the weighted-fair queue charges this job: input tuples
  /// (partition) or r+s tuples (join), never below 1.
  double wfq_cost = 1.0;
  /// Device index granted by the DevicePool (-1 before/without a grant).
  int device = -1;
  /// Device whose backlog clock was charged at placement (-1 for CPU
  /// placements and in deterministic mode, where virtual clocks rule).
  int charged_device = -1;

  /// Cooperative cancellation token; the executor wires it into the
  /// backend configs (checked at phase boundaries).
  std::atomic<bool> cancel{false};

  /// Absolute deadline key for ordering: wall microseconds since the
  /// scheduler epoch (+inf when no deadline).
  double deadline_key = std::numeric_limits<double>::infinity();
  /// Wall seconds since the scheduler epoch at submission.
  double submit_seconds = 0.0;
  /// Estimated service seconds on the backend the job was placed on
  /// (model time; the arbiter's backlog accounting uses it). With SLO
  /// admission enabled this is the EWMA-*corrected* estimate;
  /// `model_estimate_seconds` keeps the raw static-model value the
  /// correction learns against.
  double placed_estimate_seconds = 0.0;
  double model_estimate_seconds = 0.0;
  /// Live-mode SLO admission: the corrected-service-time charge the
  /// controller added to its pending-work ledger at admit, credited back
  /// when the dispatcher places the job.
  double admit_pending_charge = 0.0;
  /// SLO admission: prediction/budget stamped at the admission decision
  /// (copied into JobOutcome at completion).
  double admit_predicted_seconds = 0.0;
  double admit_budget_seconds = 0.0;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  JobOutcome outcome;
};

/// \brief Client-side completion handle (shared-state future).
class JobHandle {
 public:
  JobHandle() = default;
  explicit JobHandle(std::shared_ptr<JobRecord> rec) : rec_(std::move(rec)) {}

  bool valid() const { return rec_ != nullptr; }
  JobId id() const { return rec_ ? rec_->id : 0; }

  /// Block until the job reaches a terminal state.
  const JobOutcome& Wait() const {
    std::unique_lock<std::mutex> lock(rec_->mu);
    rec_->cv.wait(lock, [this] { return rec_->done; });
    return rec_->outcome;
  }

  /// Non-blocking probe; nullopt while the job is still in flight.
  std::optional<JobOutcome> TryGet() const {
    std::unique_lock<std::mutex> lock(rec_->mu);
    if (!rec_->done) return std::nullopt;
    return rec_->outcome;
  }

  /// Request cancellation. Queued jobs (including FPGA lease waiters)
  /// complete as kCancelled without running; a running job aborts at its
  /// next phase boundary. Safe to call at any point in the lifecycle.
  void Cancel() const {
    if (rec_) rec_->cancel.store(true, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<JobRecord> rec_;
};

/// FNV-1a over a histogram of per-partition tuple counts (the
/// backend-independent result fingerprint of a partition job).
inline uint64_t HistogramChecksum(const uint64_t* counts, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = counts[i];
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace fpart::svc
