// The multi-tenant partitioning service scheduler: the svc runtime's
// control plane.
//
//   clients ── Submit ──▶ JobQueue ── dispatcher ──▶ ready deque ──▶ workers
//                (admission)    (placement)                  (execution)
//
// One dispatcher thread pops admitted jobs in queue order (live mode:
// weighted fair queueing over priority classes, job_queue.h), decides the
// backend with DecidePlacement (cost model + live backlog), and hands the
// job to one of `num_workers` named worker threads. FPGA and hybrid jobs
// additionally acquire one exclusive device lease from the DevicePool
// (`fpga_devices` simulated FPGAs) before touching the simulator, so no
// device is ever run by two jobs at once — which is exactly why CPU
// fallback under device backlog matters.
//
// Two clocks:
//  * live mode — wall time; backlog doubles are kept per device by the
//    pool (FPGA) and by the scheduler (CPU) in model seconds, added at
//    placement and subtracted at completion.
//  * deterministic mode — virtual time: clients assign each job a
//    contiguous arrival_seq and a virtual arrival timestamp; the
//    dispatcher processes strictly in sequence order and advances
//    per-backend virtual free clocks (list scheduling). Placement is then
//    a pure function of the job stream — bit-identical across replays no
//    matter how client threads interleave.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "fpga/config.h"
#include "svc/admission.h"
#include "svc/fpga_arbiter.h"
#include "svc/job.h"
#include "svc/job_queue.h"
#include "svc/placement.h"

namespace fpart::svc {

/// How the dispatcher chooses a backend.
enum class PlacementPolicy {
  /// Cost-model + backlog comparison (DecidePlacement). The default.
  kAdaptive,
  /// Everything on the host CPU (baseline for the service benches).
  kCpuOnly,
  /// Everything on the device (saturates the arbiter; stress baseline).
  kFpgaOnly,
  /// Alternate by arrival sequence (placement-independent load split).
  kRoundRobin,
};

const char* PlacementPolicyName(PlacementPolicy policy);

/// \brief Scheduler construction knobs.
struct SchedulerConfig {
  /// Admission queue bound; Submit sheds with CapacityError beyond it.
  size_t queue_capacity = 256;
  /// Worker threads executing placed jobs (each runs one job at a time).
  size_t num_workers = 4;
  /// Autoscaling headroom (live mode): worker threads are created up to
  /// this count but only `num_workers` start active; the rest park on the
  /// ready queue until SetActiveWorkers() grows the active set (the
  /// svc.slo.pressure signal drives this in bench/ext_service's
  /// --autoscale arm). 0 = num_workers (no headroom). Deterministic mode
  /// ignores the headroom — virtual worker clocks are fixed at
  /// construction so replays stay bit-identical.
  size_t max_workers = 0;
  /// CPU threads a single job's partition/build+probe phases may use
  /// (1 = run inline on the worker; >1 = per-worker pool).
  size_t cpu_threads_per_job = 1;
  /// Simulated FPGA devices in the pool (0 is clamped to 1). Device jobs
  /// take exactly one lease; grants go to the least-backlogged free
  /// device.
  size_t fpga_devices = 1;
  /// Weighted-fair-queueing weights per priority class
  /// (interactive/batch/best-effort). Live mode only; deterministic
  /// replays dispatch in strict arrival order.
  std::array<double, kNumJobClasses> class_weights = kDefaultClassWeights;
  PlacementPolicy policy = PlacementPolicy::kAdaptive;
  /// Deterministic replay mode (strict arrival-seq dispatch + virtual
  /// clocks). See the file comment.
  bool deterministic = false;
  /// Mark FPGA runs as link-interfered while host workers are busy
  /// (Figure 2's "interfered" curves). Live mode only — deterministic
  /// replays use each request's own interference setting.
  bool adaptive_interference = true;
  /// Simulator backend for device runs the scheduler configures itself
  /// (the join jobs' partitioning passes). Partition jobs carry their own
  /// PartitionRequest::sim_mode.
  SimMode sim_mode = SimMode::kFast;
  /// Memoize device run results (FpgaPartitionerConfig::sim_cache) on the
  /// scheduler's own device runs — repeated job shapes skip re-simulation.
  bool sim_cache = false;
  /// kAnalytical only: cross-check sampling fraction
  /// (FpgaPartitionerConfig::xcheck) on the scheduler's own device runs.
  double xcheck = 0.0;
  /// SLO-aware admission control (svc/admission.h): per-class latency
  /// SLOs, deadline-feasibility rejection (Status::SloError) and the
  /// EWMA cost-model correction. Disabled by default.
  SloConfig slo;
  /// Construct with the dispatcher held; jobs queue until Resume(). Lets
  /// tests stage admission-control and cancellation scenarios.
  bool start_paused = false;
  /// Worker-thread pinning policy: applied to the `num_workers` job
  /// workers and inherited by the per-worker pools. Defaults to the
  /// process-wide FPART_AFFINITY knob. Placement and virtual-time replay
  /// are unaffected by pinning, so the determinism hash is too.
  AffinityPolicy affinity = AffinityPolicyFromEnv();
  /// Thread-name prefix of the dispatcher/worker threads.
  std::string name = "svc";
};

/// \brief The service runtime. Owns the queue, the arbiter, the dispatcher
/// and the worker threads; Shutdown() (or destruction) drains in-flight
/// jobs.
class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);
  ~Scheduler();

  FPART_DISALLOW_COPY_AND_ASSIGN(Scheduler);

  /// Submit a partitioning job. Returns CapacityError when the admission
  /// queue is full (the job is shed, backpressure to the client) or
  /// InvalidArgument after Shutdown / for a malformed spec.
  Result<JobHandle> Submit(const PartitionJobSpec& spec,
                           const JobOptions& opts = {});
  /// Submit an equi-join job (same admission semantics).
  Result<JobHandle> Submit(const JoinJobSpec& spec,
                           const JobOptions& opts = {});
  /// Submit a rebalance (layout maintenance) job. Always placed on the
  /// CPU backend; the WFQ charges `cost_tuples` like any other demand.
  Result<JobHandle> Submit(const RebalanceJobSpec& spec,
                           const JobOptions& opts = {});

  /// Release a start_paused dispatcher.
  void Resume();

  /// Request cancellation and wake any wait the job may be blocked in
  /// (FPGA lease). Equivalent to handle.Cancel() plus the wakeup.
  void Cancel(const JobHandle& handle);

  /// Stop admissions, drain every queued and running job, join all
  /// threads. Idempotent; also called by the destructor.
  void Shutdown();

  size_t queue_depth() const { return queue_.depth(); }
  /// Least-backlogged device's clock (the delay a new device job sees).
  double fpga_backlog_seconds() const { return pool_.backlog_seconds(); }
  /// Deterministic mode: the virtual-clock makespan of the replayed
  /// stream (latest device/worker virtual free time). This is the model's
  /// completion time — the quantity that shrinks as `fpga_devices` grows,
  /// independent of how many host cores the simulator itself gets. Only
  /// meaningful after Shutdown() has drained the stream; 0.0 in live mode.
  double virtual_makespan_seconds() const;
  double cpu_backlog_seconds() const;
  uint64_t jobs_submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  uint64_t jobs_shed() const { return queue_.shed(); }
  /// Served WFQ cost per class (total / while all classes backlogged).
  double class_served_cost(JobClass cls) const {
    return queue_.served_cost(cls);
  }
  double class_contended_cost(JobClass cls) const {
    return queue_.contended_cost(cls);
  }

  const DevicePool& device_pool() const { return pool_; }
  const SchedulerConfig& config() const { return config_; }

  /// The SLO admission controller (stats and correction factors; always
  /// constructed, inert unless config().slo.enabled).
  const AdmissionController& admission() const { return *admission_; }

  /// Workers currently eligible to pick up jobs (<= config().max_workers).
  size_t active_workers() const {
    return active_workers_.load(std::memory_order_acquire);
  }
  /// Grow or shrink the active worker set within [1, max_workers] — the
  /// autoscaling actuator the svc.slo.pressure signal recommends deltas
  /// for. Live mode only: returns false in deterministic mode (the
  /// virtual worker clocks are part of the replay's identity).
  bool SetActiveWorkers(size_t n);
  /// Recompute and publish the backlog-pressure signal (svc.slo.pressure
  /// plus the recommended worker/device deltas) from the live backlogs.
  AdmissionController::Pressure slo_pressure();

 private:
  Result<JobHandle> SubmitRecord(std::shared_ptr<JobRecord> rec);
  void DispatcherLoop();
  void WorkerLoop(size_t index);

  /// The static (backlog-free) part of the placement input, including the
  /// EWMA-corrected cost scales. Partition/join jobs only.
  void FillPlacementRequest(const JobRecord& rec, PlacementInput* in) const;
  /// The backend a pin or non-adaptive policy forces (nullopt: adaptive).
  std::optional<Backend> ForcedBackend(const JobRecord& rec) const;
  /// Live-mode admission: corrected prediction vs budget at submit time.
  /// OK = admitted (pending ledger charged); SloError = rejected.
  Status AdmitLive(JobRecord* rec);

  /// Decide the backend (policy + pinning), run the deterministic-mode
  /// admission check, charge the chosen backlog and stamp the record.
  /// Dispatcher-only. False: the job was rejected (SloError) and
  /// completed; it must not be handed to a worker.
  bool PlaceJob(const std::shared_ptr<JobRecord>& rec);
  /// Run the job on its placed backend and complete the record.
  void ExecuteJob(const std::shared_ptr<JobRecord>& rec, size_t worker);
  Status RunPartitionJob(JobRecord* rec, size_t worker, JobOutcome* out);
  Status RunJoinJob(JobRecord* rec, size_t worker, JobOutcome* out);
  Status RunRebalanceJob(JobRecord* rec, JobOutcome* out);
  void CompleteJob(const std::shared_ptr<JobRecord>& rec, JobState state,
                   Status status, JobOutcome outcome);

  double NowSeconds() const;

  SchedulerConfig config_;
  JobQueue queue_;
  DevicePool pool_;
  std::unique_ptr<AdmissionController> admission_;
  std::chrono::steady_clock::time_point epoch_;
  /// Workers eligible for jobs; indices beyond it park on ready_cv_.
  std::atomic<size_t> active_workers_{0};

  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<bool> shutdown_{false};

  // Dispatcher pause gate (start_paused).
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  bool paused_ = false;

  // Placed jobs awaiting a worker.
  mutable std::mutex ready_mu_;
  std::condition_variable ready_cv_;
  std::deque<std::shared_ptr<JobRecord>> ready_;
  bool dispatch_done_ = false;

  // Live-mode CPU backlog (model seconds), guarded by ready_mu_.
  double cpu_backlog_seconds_ = 0.0;

  // Workers currently executing CPU-side work (adaptive interference).
  std::atomic<uint32_t> cpu_busy_{0};

  // Deterministic mode: virtual free clocks (one per device and per
  // worker), dispatcher-only.
  std::vector<double> virt_device_free_;
  std::vector<double> virt_worker_free_;
  // Live mode: scratch for the per-device backlog snapshot handed to
  // DecidePlacement, dispatcher-only.
  std::vector<double> backlog_scratch_;

  std::thread dispatcher_;
  std::vector<std::thread> workers_;
  /// Pin plan of the job workers under config_.affinity (index = worker).
  std::vector<Topology::Pin> worker_pins_;
  /// Per-worker pools when cpu_threads_per_job > 1 (index = worker).
  std::vector<std::unique_ptr<ThreadPool>> worker_pools_;
};

}  // namespace fpart::svc
