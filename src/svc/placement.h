// Backend placement policy of the svc scheduler.
//
// DecidePlacement is a *pure function* of its input: the Section 4.6 FPGA
// cost model and the calibrated CPU model predict the service time of the
// job on each backend, each backend's current backlog (model seconds of
// already-placed, unfinished work) is added as queueing delay, and the
// backend with the lower end-to-end latency wins. Ties — within a relative
// epsilon — go to the FPGA: the paper's core argument (Sections 2, 5.4) is
// that offloading frees the CPU cores for other work, so at equal latency
// the device is strictly preferable.
//
// Purity is what makes the deterministic replay mode possible: given the
// same job stream and the same virtual backlog evolution, every run makes
// identical decisions regardless of thread interleaving.
#pragma once

#include <cstdint>

#include "fpga/config.h"
#include "hash/hash_function.h"
#include "svc/job.h"

namespace fpart::svc {

/// Everything the policy is allowed to look at.
struct PlacementInput {
  JobKind kind = JobKind::kPartition;

  /// Partition jobs: input cardinality. Join jobs: build/probe cardinality.
  uint64_t n_tuples = 0;
  uint64_t r_tuples = 0;
  uint64_t s_tuples = 0;

  /// Circuit / request configuration.
  int tuple_width = 8;
  uint32_t fanout = 2048;
  OutputMode mode = OutputMode::kPad;
  LayoutMode layout = LayoutMode::kRid;
  LinkKind link = LinkKind::kXeonFpga;
  HashMethod hash = HashMethod::kMurmur;
  Interference interference = Interference::kAlone;

  /// Threads a CPU placement would get.
  size_t cpu_threads = 1;

  /// Queueing state: model seconds of placed-but-unfinished work per
  /// backend (live mode: device-pool/scheduler backlog; deterministic
  /// mode: virtual clocks minus the job's virtual arrival time).
  ///
  /// Multi-FPGA pools hand the per-device backlog clocks in through
  /// `device_backlogs`/`fpga_devices`; the policy queues the job on the
  /// least-backlogged device, so the effective FPGA queueing delay is the
  /// pool minimum. When `device_backlogs` is null the scalar
  /// `fpga_backlog_seconds` is used (single-device compatibility form).
  const double* device_backlogs = nullptr;
  size_t fpga_devices = 1;
  double fpga_backlog_seconds = 0.0;
  double cpu_backlog_seconds = 0.0;

  /// EWMA-corrected cost plumbing (svc/admission.h): multiplicative
  /// scales the admission controller learned for this job's
  /// (backend, size-class) cells, applied to the static Section 4.6/4.8
  /// estimates. 1.0 = trust the static model (the default, and always the
  /// value in deterministic mode, where learning is off so replays stay
  /// bit-identical). `device_cost_scale` covers the device-side phases
  /// (FPGA partitioning passes); `cpu_cost_scale` covers CPU service time
  /// (partition/join/build+probe).
  double cpu_cost_scale = 1.0;
  double device_cost_scale = 1.0;
};

/// The FPGA queueing delay DecidePlacement charges: min over the
/// per-device backlog clocks, or the scalar fallback.
double EffectiveFpgaBacklogSeconds(const PlacementInput& in);

/// The policy's verdict plus the estimates that produced it (the scheduler
/// records them for backlog accounting and observability).
struct PlacementDecision {
  Backend backend = Backend::kCpu;
  /// Service time (model seconds, no queueing) on each path. For joins the
  /// FPGA path is the hybrid join (device partitioning + CPU build/probe).
  double est_fpga_seconds = 0.0;
  double est_cpu_seconds = 0.0;
  /// Portion of est_fpga_seconds spent holding the device lease — what the
  /// arbiter backlog is charged. Equals est_fpga_seconds for partition
  /// jobs; for hybrid joins it covers only the partitioning passes.
  double device_seconds = 0.0;
  /// End-to-end latency estimates including the backlog queueing delay.
  double fpga_latency_seconds = 0.0;
  double cpu_latency_seconds = 0.0;
  /// The two latencies were within the tie epsilon (FPGA chosen).
  bool tie = false;
};

/// Relative latency margin inside which the FPGA is preferred even when it
/// is nominally slower (it frees the host cores).
inline constexpr double kPlacementTieEpsilon = 0.05;

/// Zero-tuple jobs (empty relations on both sides) run on the CPU with
/// zero estimates: there is nothing to stream, so a device lease
/// round-trip is pure overhead — and the cost model's rate equations are
/// undefined at n = 0.
PlacementDecision DecidePlacement(const PlacementInput& in);

}  // namespace fpart::svc
