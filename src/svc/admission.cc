#include "svc/admission.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "obs/metrics.h"

namespace fpart::svc {
namespace {

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleOf(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

struct AdmMetrics {
  obs::Counter* considered;
  obs::Counter* admitted;
  obs::Counter* rejected_slo;
  obs::Counter* rejected_deadline;
  obs::Counter* class_rejected[kNumJobClasses];
  obs::Histogram* predicted_us;
  obs::Gauge* correction[kNumBackends][kNumSizeClasses];
  obs::Gauge* pressure;
  obs::Gauge* worker_delta;
  obs::Gauge* device_delta;
  obs::Histogram* place_err[kNumBackends][kNumSizeClasses];
};

AdmMetrics& Metrics() {
  static AdmMetrics m = [] {
    auto& reg = obs::Registry::Global();
    AdmMetrics x;
    x.considered = reg.GetCounter(
        "svc.adm.considered", "jobs",
        "jobs evaluated by the SLO admission controller");
    x.admitted = reg.GetCounter(
        "svc.adm.admitted", "jobs",
        "jobs whose corrected prediction fit their budget");
    x.rejected_slo = reg.GetCounter(
        "svc.adm.rejected.slo", "jobs",
        "jobs rejected against their class latency SLO");
    x.rejected_deadline = reg.GetCounter(
        "svc.adm.rejected.deadline", "jobs",
        "jobs rejected against their own deadline");
    x.predicted_us = reg.GetHistogram(
        "svc.adm.predicted_us", "us",
        "corrected end-to-end latency predicted at admission");
    for (size_t c = 0; c < kNumJobClasses; ++c) {
      x.class_rejected[c] = reg.GetCounter(
          std::string("svc.slo.rejected.") +
              JobClassName(static_cast<JobClass>(c)),
          "jobs", "SLO-infeasible jobs rejected in this class");
    }
    static const char* kBackendNames[kNumBackends] = {"cpu", "fpga",
                                                      "hybrid"};
    for (size_t b = 0; b < kNumBackends; ++b) {
      for (size_t s = 0; s < kNumSizeClasses; ++s) {
        x.correction[b][s] = reg.GetGauge(
            std::string("svc.adm.correction.") + kBackendNames[b] + "." +
                SizeClassName(s),
            "x", "EWMA cost-model correction factor (actual/estimate)");
        // Same names SvcMetrics registers (scheduler.cc): the registry is
        // find-or-create, so both sides share one histogram per cell.
        x.place_err[b][s] = reg.GetHistogram(
            std::string("svc.place.err_pct.") + kBackendNames[b] + "." +
                SizeClassName(s),
            "pct", "placement estimate error |run-est|/run*100");
      }
    }
    x.pressure = reg.GetGauge(
        "svc.slo.pressure", "x",
        "backlog drain time over the tightest SLO (>1 = overloaded)");
    x.worker_delta = reg.GetGauge(
        "svc.slo.recommended_worker_delta", "workers",
        "worker count change the pressure signal recommends");
    x.device_delta = reg.GetGauge(
        "svc.slo.recommended_device_delta", "devices",
        "device count change the pressure signal recommends (advisory)");
    return x;
  }();
  return m;
}

}  // namespace

size_t SizeClassOf(double demand_tuples) {
  if (demand_tuples < 64.0 * 1024) return 0;    // small
  if (demand_tuples < 1024.0 * 1024) return 1;  // medium
  return 2;                                     // large
}

const char* SizeClassName(size_t size_class) {
  switch (size_class) {
    case 0:
      return "small";
    case 1:
      return "medium";
    case 2:
      return "large";
    default:
      return "unknown";
  }
}

AdmissionController::AdmissionController(const SloConfig& config,
                                         size_t num_workers,
                                         size_t num_devices)
    : config_(config),
      num_workers_(std::max<size_t>(1, num_workers)),
      num_devices_(std::max<size_t>(1, num_devices)) {
  for (auto& row : correction_bits_) {
    for (auto& cell : row) {
      cell.store(BitsOf(1.0), std::memory_order_relaxed);
    }
  }
  pending_bits_.store(BitsOf(0.0), std::memory_order_relaxed);
}

double AdmissionController::correction(Backend backend,
                                       size_t size_class) const {
  const size_t b = static_cast<size_t>(backend);
  const size_t s = std::min(size_class, kNumSizeClasses - 1);
  return DoubleOf(correction_bits_[b][s].load(std::memory_order_relaxed));
}

double AdmissionController::Correct(Backend backend, double demand_tuples,
                                    double est_seconds) const {
  return est_seconds * correction(backend, SizeClassOf(demand_tuples));
}

double AdmissionController::BudgetSeconds(JobClass cls,
                                          double deadline_seconds) const {
  double budget = std::numeric_limits<double>::infinity();
  if (deadline_seconds > 0.0) budget = deadline_seconds;
  const double slo = config_.class_slo_seconds[static_cast<size_t>(cls)];
  if (slo > 0.0) budget = std::min(budget, slo);
  return budget;
}

void AdmissionController::ObserveRun(Backend backend, double demand_tuples,
                                     double model_est_seconds,
                                     double placed_est_seconds,
                                     double actual_seconds, bool learn) {
  if (actual_seconds <= 0.0) return;
  auto& m = Metrics();
  const size_t b = static_cast<size_t>(backend);
  const size_t s = SizeClassOf(demand_tuples);
  if (placed_est_seconds > 0.0) {
    const double err_pct =
        std::abs(actual_seconds - placed_est_seconds) / actual_seconds *
        100.0;
    m.place_err[b][s]->Record(static_cast<uint64_t>(err_pct));
  }

  if (!learn || !config_.learn || !config_.enabled ||
      model_est_seconds <= 0.0) {
    return;
  }
  const double ratio = std::clamp(actual_seconds / model_est_seconds,
                                  config_.correction_floor,
                                  config_.correction_cap);
  std::atomic<uint64_t>& cell = correction_bits_[b][s];
  uint64_t seen = cell.load(std::memory_order_relaxed);
  for (;;) {
    const double next =
        std::clamp((1.0 - config_.ewma_alpha) * DoubleOf(seen) +
                       config_.ewma_alpha * ratio,
                   config_.correction_floor, config_.correction_cap);
    if (cell.compare_exchange_weak(seen, BitsOf(next),
                                   std::memory_order_relaxed)) {
      m.correction[b][s]->Set(next);
      return;
    }
  }
}

AdmissionController::Verdict AdmissionController::Judge(
    JobClass cls, double deadline_seconds, double predicted_seconds) {
  auto& m = Metrics();
  Verdict v;
  v.predicted_seconds = predicted_seconds;
  v.budget_seconds = BudgetSeconds(cls, deadline_seconds);
  considered_.fetch_add(1, std::memory_order_relaxed);
  m.considered->Add();
  m.predicted_us->Record(
      static_cast<uint64_t>(std::max(0.0, predicted_seconds) * 1e6));
  if (predicted_seconds <= v.budget_seconds) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    m.admitted->Add();
    return v;
  }
  const double slo = config_.class_slo_seconds[static_cast<size_t>(cls)];
  // The binding budget: the deadline, unless the class SLO is (at least
  // as) tight.
  v.deadline_bound =
      deadline_seconds > 0.0 && (slo <= 0.0 || deadline_seconds < slo);
  v.admit = false;
  v.status = Status::SloError(
      "predicted " + std::to_string(predicted_seconds) + " s exceeds " +
      (v.deadline_bound ? "deadline " : "class SLO ") +
      std::to_string(v.budget_seconds) + " s");
  if (v.deadline_bound) {
    rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
    m.rejected_deadline->Add();
  } else {
    rejected_slo_.fetch_add(1, std::memory_order_relaxed);
    m.rejected_slo->Add();
  }
  rejected_by_class_[static_cast<size_t>(cls)].fetch_add(
      1, std::memory_order_relaxed);
  m.class_rejected[static_cast<size_t>(cls)]->Add();
  return v;
}

void AdmissionController::AddPending(double seconds) {
  if (seconds <= 0.0) return;
  uint64_t seen = pending_bits_.load(std::memory_order_relaxed);
  while (!pending_bits_.compare_exchange_weak(
      seen, BitsOf(DoubleOf(seen) + seconds), std::memory_order_relaxed)) {
  }
}

void AdmissionController::SubPending(double seconds) {
  if (seconds <= 0.0) return;
  uint64_t seen = pending_bits_.load(std::memory_order_relaxed);
  while (!pending_bits_.compare_exchange_weak(
      seen, BitsOf(std::max(0.0, DoubleOf(seen) - seconds)),
      std::memory_order_relaxed)) {
  }
}

double AdmissionController::pending_seconds() const {
  return DoubleOf(pending_bits_.load(std::memory_order_relaxed));
}

AdmissionController::Pressure AdmissionController::UpdatePressure(
    double cpu_backlog_seconds, double device_backlog_seconds,
    size_t active_workers, size_t max_workers, size_t num_devices) {
  // Reference horizon: the tightest configured SLO (a backlog that long
  // already eats a whole budget), 1 s when no SLO is configured.
  double reference = std::numeric_limits<double>::infinity();
  for (double slo : config_.class_slo_seconds) {
    if (slo > 0.0) reference = std::min(reference, slo);
  }
  if (!std::isfinite(reference)) reference = 1.0;

  const size_t workers = std::max<size_t>(1, active_workers);
  const size_t devices = std::max<size_t>(1, num_devices);
  const double cpu_pressure =
      (cpu_backlog_seconds + pending_seconds()) /
      (static_cast<double>(workers) * reference);
  const double device_pressure =
      device_backlog_seconds / (static_cast<double>(devices) * reference);

  Pressure p;
  p.value = std::max(cpu_pressure, device_pressure);
  if (cpu_pressure > config_.pressure_high) {
    const int want = static_cast<int>(
        std::ceil((cpu_pressure - 1.0) * static_cast<double>(workers)));
    const int room = static_cast<int>(max_workers) - static_cast<int>(workers);
    p.worker_delta = std::max(0, std::min(want, room));
  } else if (cpu_pressure < config_.pressure_low && workers > 1) {
    p.worker_delta = -1;
  }
  if (device_pressure > config_.pressure_high) {
    p.device_delta = static_cast<int>(
        std::ceil((device_pressure - 1.0) * static_cast<double>(devices)));
  } else if (device_pressure < config_.pressure_low && devices > 1) {
    p.device_delta = -1;
  }

  auto& m = Metrics();
  m.pressure->Set(p.value);
  m.worker_delta->Set(static_cast<double>(p.worker_delta));
  m.device_delta->Set(static_cast<double>(p.device_delta));
  return p;
}

}  // namespace fpart::svc
