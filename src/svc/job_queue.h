// Bounded admission queue of the svc runtime: concurrent clients push
// JobRecords, the scheduler's dispatcher pops them.
//
// Two orderings:
//  * live mode — (deadline, arrival seq): earliest-deadline-first with
//    FIFO among equal (or absent) deadlines;
//  * deterministic mode (strict_seq) — strictly by the caller-assigned
//    contiguous arrival sequence, so placement processes jobs in the same
//    order on every replay regardless of client-thread interleaving. A
//    job shed at admission leaves a tombstone so the dispatcher never
//    waits for a sequence number that will not arrive.
//
// Admission control: Push on a full queue rejects with
// Status::CapacityError — the typed backpressure signal clients see.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "common/status.h"
#include "svc/job.h"

namespace fpart::svc {

class JobQueue {
 public:
  /// \param capacity    maximum queued (admitted, undispatched) jobs
  /// \param strict_seq  deterministic mode: pop strictly by arrival_seq
  JobQueue(size_t capacity, bool strict_seq);

  FPART_DISALLOW_COPY_AND_ASSIGN(JobQueue);

  /// Admit a job, or reject with Status::CapacityError when the queue is
  /// full (the record is untouched; the caller sheds it). Errors with
  /// Status::InvalidArgument after Close().
  Status Push(std::shared_ptr<JobRecord> rec);

  /// Next job in queue order; blocks while empty. Returns nullptr once the
  /// queue is closed and drained.
  std::shared_ptr<JobRecord> Pop();

  /// Stop admissions and wake the dispatcher once drained.
  void Close();

  size_t depth() const;
  uint64_t pushed() const;
  uint64_t shed() const;

 private:
  using OrderKey = std::pair<double, uint64_t>;  // (deadline_key, seq)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const size_t capacity_;
  const bool strict_seq_;
  bool closed_ = false;
  std::map<OrderKey, std::shared_ptr<JobRecord>> by_deadline_;
  std::map<uint64_t, std::shared_ptr<JobRecord>> by_seq_;
  /// strict_seq only: sequence numbers shed at admission (tombstones).
  std::set<uint64_t> skipped_;
  uint64_t next_seq_ = 0;  // strict_seq only: next sequence to dispatch
  uint64_t pushed_ = 0;
  uint64_t shed_ = 0;
};

}  // namespace fpart::svc
