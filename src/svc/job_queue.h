// Bounded admission queue of the svc runtime: concurrent clients push
// JobRecords, the scheduler's dispatcher pops them.
//
// Two orderings:
//  * live mode — weighted fair queueing over priority classes (self-clocked
//    fair queueing at class granularity): each class keeps its own
//    (deadline, arrival seq) ordered backlog and a *virtual start* stamp,
//    set to max(class finish, vtime) when the class becomes backlogged and
//    advanced to the served job's finish tag after each pop from it. The
//    pop picks the class whose head carries the smallest virtual finish
//    F = start + cost / weight, and the queue's vtime self-clocks to the
//    served F. Continuously backlogged classes therefore receive service
//    cost in proportion to their weights, and no class starves: a stamped
//    F is fixed while the class waits, and every competing class's F
//    strictly increases past it. Within a class jobs still dispatch
//    earliest-deadline-first with FIFO among equal deadlines;
//  * deterministic mode (strict_seq) — strictly by the caller-assigned
//    contiguous arrival sequence, so placement processes jobs in the same
//    order on every replay regardless of client-thread interleaving. A
//    job shed at admission leaves a tombstone so the dispatcher never
//    waits for a sequence number that will not arrive.
//
// Admission control: Push on a full queue rejects with
// Status::CapacityError — the typed backpressure signal clients see.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "common/status.h"
#include "svc/job.h"

namespace fpart::svc {

/// Default class weights: interactive 8 : batch 3 : best-effort 1.
inline constexpr std::array<double, kNumJobClasses> kDefaultClassWeights = {
    8.0, 3.0, 1.0};

class JobQueue {
 public:
  /// \param capacity    maximum queued (admitted, undispatched) jobs
  /// \param strict_seq  deterministic mode: pop strictly by arrival_seq
  /// \param weights     per-class WFQ weights (clamped to a small positive
  ///                    floor; live mode only)
  JobQueue(size_t capacity, bool strict_seq,
           const std::array<double, kNumJobClasses>& weights =
               kDefaultClassWeights);

  FPART_DISALLOW_COPY_AND_ASSIGN(JobQueue);

  /// Admit a job, or reject with Status::CapacityError when the queue is
  /// full (the record is untouched; the caller sheds it). Errors with
  /// Status::InvalidArgument after Close().
  Status Push(std::shared_ptr<JobRecord> rec);

  /// Next job in queue order; blocks while empty. Returns nullptr once the
  /// queue is closed and drained.
  std::shared_ptr<JobRecord> Pop();

  /// Stop admissions and wake the dispatcher once drained.
  void Close();

  size_t depth() const;
  uint64_t pushed() const;
  uint64_t shed() const;
  /// Capacity rejects charged to `cls`. Bumped on *every* shed path —
  /// live and strict-seq mode alike — together with the
  /// svc.q.rejected.<class> counters (historically the per-class tallies
  /// only covered strict-arrival mode, so live-mode rejects were
  /// invisible per class).
  uint64_t shed(JobClass cls) const;

  /// Summed wfq_cost of the jobs popped from `cls` so far.
  double served_cost(JobClass cls) const;
  /// Summed wfq_cost popped from `cls` while *every* class had backlog —
  /// the window over which the WFQ share invariant is defined.
  double contended_cost(JobClass cls) const;
  uint64_t popped(JobClass cls) const;
  double weight(JobClass cls) const;

 private:
  using OrderKey = std::pair<double, uint64_t>;  // (deadline_key, seq)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const size_t capacity_;
  const bool strict_seq_;
  std::array<double, kNumJobClasses> weights_;
  bool closed_ = false;
  /// Live mode: per-class backlog, earliest deadline first within a class.
  std::array<std::map<OrderKey, std::shared_ptr<JobRecord>>, kNumJobClasses>
      by_class_;
  std::map<uint64_t, std::shared_ptr<JobRecord>> by_seq_;
  /// strict_seq only: sequence numbers shed at admission (tombstones).
  std::set<uint64_t> skipped_;
  uint64_t next_seq_ = 0;  // strict_seq only: next sequence to dispatch
  uint64_t pushed_ = 0;
  uint64_t shed_ = 0;
  std::array<uint64_t, kNumJobClasses> shed_by_class_{};
  /// WFQ virtual clocks: vtime_ self-clocks to the last served finish tag;
  /// class_vf_ is each class's cumulative finish; class_start_ is the
  /// stamped virtual start of the class's current head (valid while the
  /// class is backlogged — stamping, not per-pop recomputation, is what
  /// makes the discipline starvation-free).
  double vtime_ = 0.0;
  std::array<double, kNumJobClasses> class_vf_{};
  std::array<double, kNumJobClasses> class_start_{};
  std::array<double, kNumJobClasses> served_cost_{};
  std::array<double, kNumJobClasses> contended_cost_{};
  std::array<uint64_t, kNumJobClasses> popped_{};

  size_t LiveDepthLocked() const;
};

}  // namespace fpart::svc
