#include "svc/placement.h"

#include <algorithm>
#include <cmath>

#include "model/cost_model.h"
#include "model/cpu_model.h"

namespace fpart::svc {
namespace {

PlacementDecision DecidePartition(const PlacementInput& in) {
  PlacementDecision d;
  const FpgaCostModel fpga(in.tuple_width, in.fanout);
  d.est_fpga_seconds = in.device_cost_scale *
                       fpga.PredictSeconds(in.n_tuples, in.mode, in.layout,
                                           in.link, in.interference);
  d.device_seconds = d.est_fpga_seconds;
  d.est_cpu_seconds =
      in.cpu_cost_scale *
      CpuCostModel::PartitionSeconds(in.n_tuples, in.cpu_threads, in.hash);
  d.fpga_latency_seconds =
      EffectiveFpgaBacklogSeconds(in) + d.est_fpga_seconds;
  d.cpu_latency_seconds = in.cpu_backlog_seconds + d.est_cpu_seconds;
  return d;
}

PlacementDecision DecideJoin(const PlacementInput& in) {
  PlacementDecision d;
  const FpgaCostModel fpga(in.tuple_width, in.fanout);
  // Hybrid path (Section 5): the device partitions both relations under
  // the lease, the host runs build+probe afterwards.
  d.device_seconds =
      in.device_cost_scale *
      (fpga.PredictSeconds(in.r_tuples, in.mode, in.layout, in.link,
                           in.interference) +
       fpga.PredictSeconds(in.s_tuples, in.mode, in.layout, in.link,
                           in.interference));
  d.est_fpga_seconds =
      d.device_seconds +
      in.cpu_cost_scale *
          CpuCostModel::BuildProbeSeconds(in.r_tuples + in.s_tuples,
                                          in.r_tuples, in.fanout,
                                          in.cpu_threads);
  d.est_cpu_seconds =
      in.cpu_cost_scale *
      CpuCostModel::JoinSeconds(in.r_tuples, in.s_tuples, in.fanout,
                                in.cpu_threads, in.hash);
  // The hybrid join is gated on the device from the start (partitioning is
  // its first phase), so the whole path waits out the device backlog.
  d.fpga_latency_seconds = EffectiveFpgaBacklogSeconds(in) + d.est_fpga_seconds;
  d.cpu_latency_seconds = in.cpu_backlog_seconds + d.est_cpu_seconds;
  return d;
}

}  // namespace

double EffectiveFpgaBacklogSeconds(const PlacementInput& in) {
  if (in.device_backlogs == nullptr || in.fpga_devices == 0) {
    return in.fpga_backlog_seconds;
  }
  double min = in.device_backlogs[0];
  for (size_t i = 1; i < in.fpga_devices; ++i) {
    if (in.device_backlogs[i] < min) min = in.device_backlogs[i];
  }
  return min;
}

PlacementDecision DecidePlacement(const PlacementInput& in) {
  // Empty jobs never earn a device lease (see placement.h).
  if (in.n_tuples + in.r_tuples + in.s_tuples == 0) {
    PlacementDecision d;
    d.backend = Backend::kCpu;
    d.cpu_latency_seconds = in.cpu_backlog_seconds;
    d.fpga_latency_seconds = EffectiveFpgaBacklogSeconds(in);
    return d;
  }
  PlacementDecision d = in.kind == JobKind::kPartition ? DecidePartition(in)
                                                       : DecideJoin(in);
  const Backend device_backend =
      in.kind == JobKind::kPartition ? Backend::kFpga : Backend::kHybrid;
  const double margin = kPlacementTieEpsilon *
                        std::max(d.fpga_latency_seconds,
                                 d.cpu_latency_seconds);
  if (d.fpga_latency_seconds <= d.cpu_latency_seconds) {
    d.backend = device_backend;
  } else if (d.fpga_latency_seconds - d.cpu_latency_seconds <= margin) {
    // Nominally slower on the device, but within the tie margin: still
    // offload, because the device run leaves the host cores free.
    d.backend = device_backend;
    d.tie = true;
  } else {
    d.backend = Backend::kCpu;
  }
  return d;
}

}  // namespace fpart::svc
