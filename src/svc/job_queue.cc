#include "svc/job_queue.h"

namespace fpart::svc {

JobQueue::JobQueue(size_t capacity, bool strict_seq)
    : capacity_(capacity == 0 ? 1 : capacity), strict_seq_(strict_seq) {}

Status JobQueue::Push(std::shared_ptr<JobRecord> rec) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) {
      return Status::InvalidArgument("job queue is closed");
    }
    const size_t depth = strict_seq_ ? by_seq_.size() : by_deadline_.size();
    if (depth >= capacity_) {
      ++shed_;
      if (strict_seq_) {
        // Leave a tombstone so Pop never stalls on this sequence number.
        skipped_.insert(rec->seq);
      }
      cv_.notify_all();
      return Status::CapacityError("svc queue full (" +
                                   std::to_string(capacity_) +
                                   " jobs); job shed");
    }
    ++pushed_;
    if (strict_seq_) {
      by_seq_.emplace(rec->seq, std::move(rec));
    } else {
      by_deadline_.emplace(OrderKey{rec->deadline_key, rec->seq},
                           std::move(rec));
    }
  }
  cv_.notify_all();
  return Status::OK();
}

std::shared_ptr<JobRecord> JobQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (strict_seq_) {
      // Skip over admission-shed sequence numbers.
      while (skipped_.count(next_seq_) > 0) {
        skipped_.erase(next_seq_);
        ++next_seq_;
      }
      auto it = by_seq_.find(next_seq_);
      if (it != by_seq_.end()) {
        auto rec = std::move(it->second);
        by_seq_.erase(it);
        ++next_seq_;
        return rec;
      }
      if (closed_) {
        if (by_seq_.empty()) return nullptr;
        // Contract violation tolerance: after Close() every admitted
        // sequence is final, so a gap can never be filled — skip to the
        // smallest sequence actually present instead of hanging.
        next_seq_ = by_seq_.begin()->first;
        continue;
      }
    } else {
      if (!by_deadline_.empty()) {
        auto it = by_deadline_.begin();
        auto rec = std::move(it->second);
        by_deadline_.erase(it);
        return rec;
      }
      if (closed_) return nullptr;
    }
    cv_.wait(lock);
  }
}

void JobQueue::Close() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t JobQueue::depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return strict_seq_ ? by_seq_.size() : by_deadline_.size();
}

uint64_t JobQueue::pushed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return pushed_;
}

uint64_t JobQueue::shed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return shed_;
}

}  // namespace fpart::svc
