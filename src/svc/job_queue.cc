#include "svc/job_queue.h"

#include <algorithm>
#include <string>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace fpart::svc {
namespace {

/// Weights below this are clamped up: a zero weight would stall the class
/// forever (infinite virtual finish time), which is starvation by
/// configuration — WFQ promises every class forward progress.
constexpr double kMinWeight = 1e-9;

/// Per-class capacity-reject counters, bumped on every shed regardless of
/// queue mode (live WFQ and strict-seq replay take the same path here).
obs::Counter* RejectedCounter(JobClass cls) {
  static obs::Counter* counters[kNumJobClasses] = {nullptr, nullptr,
                                                   nullptr};
  static std::once_flag once;
  std::call_once(once, [] {
    auto& reg = obs::Registry::Global();
    for (size_t c = 0; c < kNumJobClasses; ++c) {
      counters[c] = reg.GetCounter(
          std::string("svc.q.rejected.") +
              JobClassName(static_cast<JobClass>(c)),
          "jobs", "jobs shed with CapacityError in this class");
    }
  });
  return counters[static_cast<size_t>(cls)];
}

}  // namespace

JobQueue::JobQueue(size_t capacity, bool strict_seq,
                   const std::array<double, kNumJobClasses>& weights)
    : capacity_(capacity == 0 ? 1 : capacity), strict_seq_(strict_seq) {
  for (size_t c = 0; c < kNumJobClasses; ++c) {
    weights_[c] = std::max(weights[c], kMinWeight);
  }
}

size_t JobQueue::LiveDepthLocked() const {
  size_t depth = 0;
  for (const auto& q : by_class_) depth += q.size();
  return depth;
}

Status JobQueue::Push(std::shared_ptr<JobRecord> rec) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) {
      return Status::InvalidArgument("job queue is closed");
    }
    const size_t depth = strict_seq_ ? by_seq_.size() : LiveDepthLocked();
    if (depth >= capacity_ || Failpoint("svc.queue.full")) {
      ++shed_;
      ++shed_by_class_[static_cast<size_t>(rec->cls)];
      RejectedCounter(rec->cls)->Add();
      if (strict_seq_) {
        // Leave a tombstone so Pop never stalls on this sequence number.
        skipped_.insert(rec->seq);
      }
      cv_.notify_all();
      return Status::CapacityError("svc queue full (" +
                                   std::to_string(capacity_) +
                                   " jobs); job shed");
    }
    ++pushed_;
    if (strict_seq_) {
      by_seq_.emplace(rec->seq, std::move(rec));
    } else {
      const size_t cls = static_cast<size_t>(rec->cls);
      if (by_class_[cls].empty()) {
        // The class becomes backlogged: stamp its virtual start at the
        // current service point. Idle classes accumulate no credit.
        class_start_[cls] = std::max(class_vf_[cls], vtime_);
      }
      by_class_[cls].emplace(OrderKey{rec->deadline_key, rec->seq},
                             std::move(rec));
    }
  }
  cv_.notify_all();
  return Status::OK();
}

std::shared_ptr<JobRecord> JobQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (strict_seq_) {
      // Skip over admission-shed sequence numbers.
      while (skipped_.count(next_seq_) > 0) {
        skipped_.erase(next_seq_);
        ++next_seq_;
      }
      auto it = by_seq_.find(next_seq_);
      if (it != by_seq_.end()) {
        auto rec = std::move(it->second);
        by_seq_.erase(it);
        ++next_seq_;
        const size_t cls = static_cast<size_t>(rec->cls);
        served_cost_[cls] += rec->wfq_cost;
        ++popped_[cls];
        return rec;
      }
      if (closed_) {
        if (by_seq_.empty()) return nullptr;
        // Contract violation tolerance: after Close() every admitted
        // sequence is final, so a gap can never be filled — skip to the
        // smallest sequence actually present instead of hanging.
        next_seq_ = by_seq_.begin()->first;
        continue;
      }
    } else {
      // Weighted fair queueing: serve the class whose head job finishes
      // earliest on the virtual clock, F = stamped start + cost / weight.
      // Ties go to the higher-priority (lower-numbered) class.
      size_t best = kNumJobClasses;
      double best_fin = 0.0;
      bool contended = true;
      for (size_t c = 0; c < kNumJobClasses; ++c) {
        if (by_class_[c].empty()) {
          contended = false;
          continue;
        }
        const JobRecord& head = *by_class_[c].begin()->second;
        const double fin = class_start_[c] + head.wfq_cost / weights_[c];
        if (best == kNumJobClasses || fin < best_fin) {
          best = c;
          best_fin = fin;
        }
      }
      if (best != kNumJobClasses) {
        auto it = by_class_[best].begin();
        auto rec = std::move(it->second);
        by_class_[best].erase(it);
        // Self-clock: virtual time is the served job's finish tag; the
        // class's next head starts where this job finished.
        vtime_ = best_fin;
        class_vf_[best] = best_fin;
        class_start_[best] = best_fin;
        served_cost_[best] += rec->wfq_cost;
        if (contended) contended_cost_[best] += rec->wfq_cost;
        ++popped_[best];
        return rec;
      }
      if (closed_) return nullptr;
    }
    cv_.wait(lock);
  }
}

void JobQueue::Close() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t JobQueue::depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return strict_seq_ ? by_seq_.size() : LiveDepthLocked();
}

uint64_t JobQueue::pushed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return pushed_;
}

uint64_t JobQueue::shed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return shed_;
}

uint64_t JobQueue::shed(JobClass cls) const {
  std::unique_lock<std::mutex> lock(mu_);
  return shed_by_class_[static_cast<size_t>(cls)];
}

double JobQueue::served_cost(JobClass cls) const {
  std::unique_lock<std::mutex> lock(mu_);
  return served_cost_[static_cast<size_t>(cls)];
}

double JobQueue::contended_cost(JobClass cls) const {
  std::unique_lock<std::mutex> lock(mu_);
  return contended_cost_[static_cast<size_t>(cls)];
}

uint64_t JobQueue::popped(JobClass cls) const {
  std::unique_lock<std::mutex> lock(mu_);
  return popped_[static_cast<size_t>(cls)];
}

double JobQueue::weight(JobClass cls) const {
  return weights_[static_cast<size_t>(cls)];
}

}  // namespace fpart::svc
