#include "svc/fpga_arbiter.h"

#include <string>

#include "obs/metrics.h"

namespace fpart::svc {

DevicePool::DevicePool(size_t num_devices) {
  devices_.resize(num_devices == 0 ? 1 : num_devices);
  auto& reg = obs::Registry::Global();
  for (size_t i = 0; i < devices_.size(); ++i) {
    const std::string prefix = "svc.device." + std::to_string(i);
    devices_[i].grants_metric = reg.GetCounter(
        prefix + ".grants", "grants", "lease grants on this device");
    devices_[i].busy_us_metric = reg.GetCounter(
        prefix + ".busy_us", "us", "wall time jobs held this device lease");
    devices_[i].backlog_metric =
        reg.GetGauge(prefix + ".backlog_seconds", "s",
                     "placed-but-unfinished model time on this device");
  }
}

int DevicePool::PickFreeDeviceLocked(const JobRecord* rec) const {
  int best = -1;
  double best_backlog = 0.0;
  for (size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].holder != nullptr) continue;
    double backlog = devices_[i].backlog_seconds;
    // The job's own placement charge sits on charged_device; discount it
    // so the charge does not repel the job from its predicted device.
    if (rec != nullptr && rec->charged_device == static_cast<int>(i)) {
      backlog -= rec->placed_estimate_seconds;
    }
    if (best < 0 || backlog < best_backlog) {
      best = static_cast<int>(i);
      best_backlog = backlog;
    }
  }
  return best;
}

Status DevicePool::Acquire(JobRecord* rec) {
  const WaitKey key{rec->deadline_key, rec->seq};
  std::unique_lock<std::mutex> lock(mu_);
  waiters_.insert(key);
  for (;;) {
    if (rec->cancel.load(std::memory_order_relaxed)) {
      waiters_.erase(key);
      // The departing waiter may have been the one everybody was ordered
      // behind — wake the rest so the best remaining waiter can claim a
      // free device.
      cv_.notify_all();
      return Status::Cancelled("job " + std::to_string(rec->id) +
                               " cancelled while waiting for FPGA lease");
    }
    if (held_ < devices_.size() && *waiters_.begin() == key) {
      const int dev = PickFreeDeviceLocked(rec);
      waiters_.erase(key);
      devices_[dev].holder = rec;
      ++devices_[dev].grants;
      devices_[dev].grants_metric->Add();
      ++held_;
      rec->device = dev;
      // Another device may still be free: let the next-best waiter in.
      cv_.notify_all();
      return Status::OK();
    }
    cv_.wait(lock);
  }
}

void DevicePool::Release(JobRecord* rec) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    const int dev = rec->device;
    if (dev >= 0 && dev < static_cast<int>(devices_.size()) &&
        devices_[dev].holder == rec) {
      devices_[dev].holder = nullptr;
      --held_;
      rec->device = -1;
    }
  }
  cv_.notify_all();
}

void DevicePool::NotifyCancelled() { cv_.notify_all(); }

int DevicePool::ChargeLeastLoaded(double est_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  size_t best = 0;
  for (size_t i = 1; i < devices_.size(); ++i) {
    if (devices_[i].backlog_seconds < devices_[best].backlog_seconds) {
      best = i;
    }
  }
  devices_[best].backlog_seconds += est_seconds;
  devices_[best].backlog_metric->Set(devices_[best].backlog_seconds);
  return static_cast<int>(best);
}

void DevicePool::Credit(int device, double est_seconds) {
  if (device < 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (device >= static_cast<int>(devices_.size())) return;
  Device& d = devices_[device];
  d.backlog_seconds -= est_seconds;
  if (d.backlog_seconds < 0.0) d.backlog_seconds = 0.0;
  d.backlog_metric->Set(d.backlog_seconds);
}

void DevicePool::RecordBusy(int device, double wall_seconds) {
  if (device < 0 || device >= static_cast<int>(devices_.size())) return;
  if (wall_seconds <= 0.0) return;
  devices_[device].busy_us_metric->Add(
      static_cast<uint64_t>(wall_seconds * 1e6));
}

double DevicePool::backlog_seconds() const {
  std::unique_lock<std::mutex> lock(mu_);
  double min = devices_[0].backlog_seconds;
  for (const Device& d : devices_) {
    if (d.backlog_seconds < min) min = d.backlog_seconds;
  }
  return min;
}

double DevicePool::total_backlog_seconds() const {
  std::unique_lock<std::mutex> lock(mu_);
  double sum = 0.0;
  for (const Device& d : devices_) sum += d.backlog_seconds;
  return sum;
}

double DevicePool::device_backlog_seconds(size_t device) const {
  std::unique_lock<std::mutex> lock(mu_);
  return device < devices_.size() ? devices_[device].backlog_seconds : 0.0;
}

void DevicePool::SnapshotBacklogs(std::vector<double>* out) const {
  std::unique_lock<std::mutex> lock(mu_);
  out->resize(devices_.size());
  for (size_t i = 0; i < devices_.size(); ++i) {
    (*out)[i] = devices_[i].backlog_seconds;
  }
}

uint64_t DevicePool::grants() const {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t sum = 0;
  for (const Device& d : devices_) sum += d.grants;
  return sum;
}

uint64_t DevicePool::device_grants(size_t device) const {
  std::unique_lock<std::mutex> lock(mu_);
  return device < devices_.size() ? devices_[device].grants : 0;
}

size_t DevicePool::waiters() const {
  std::unique_lock<std::mutex> lock(mu_);
  return waiters_.size();
}

}  // namespace fpart::svc
