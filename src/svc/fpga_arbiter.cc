#include "svc/fpga_arbiter.h"

namespace fpart::svc {

Status FpgaArbiter::Acquire(JobRecord* rec) {
  const WaitKey key{rec->deadline_key, rec->seq};
  std::unique_lock<std::mutex> lock(mu_);
  waiters_.insert(key);
  for (;;) {
    if (rec->cancel.load(std::memory_order_relaxed)) {
      waiters_.erase(key);
      // The departing waiter may have been the one everybody was ordered
      // behind — wake the rest so the best remaining waiter can claim a
      // free device.
      cv_.notify_all();
      return Status::Cancelled("job " + std::to_string(rec->id) +
                               " cancelled while waiting for FPGA lease");
    }
    if (holder_ == nullptr && *waiters_.begin() == key) {
      waiters_.erase(key);
      holder_ = rec;
      ++grants_;
      return Status::OK();
    }
    cv_.wait(lock);
  }
}

void FpgaArbiter::Release(JobRecord* rec) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (holder_ == rec) holder_ = nullptr;
  }
  cv_.notify_all();
}

void FpgaArbiter::NotifyCancelled() { cv_.notify_all(); }

void FpgaArbiter::AddBacklog(double est_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  backlog_seconds_ += est_seconds;
}

void FpgaArbiter::SubBacklog(double est_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  backlog_seconds_ -= est_seconds;
  if (backlog_seconds_ < 0.0) backlog_seconds_ = 0.0;
}

double FpgaArbiter::backlog_seconds() const {
  std::unique_lock<std::mutex> lock(mu_);
  return backlog_seconds_;
}

uint64_t FpgaArbiter::grants() const {
  std::unique_lock<std::mutex> lock(mu_);
  return grants_;
}

size_t FpgaArbiter::waiters() const {
  std::unique_lock<std::mutex> lock(mu_);
  return waiters_.size();
}

}  // namespace fpart::svc
