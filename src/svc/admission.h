// SLO-aware admission control with online cost-model correction.
//
// The Section 4.6/4.8 cost models predict a job's service time before it
// runs; the svc.place.err_pct.<backend>.<size> histograms (scheduler.cc)
// measure how wrong those predictions are, online, per (backend,
// size-class) cell. The AdmissionController closes that loop:
//
//  1. Correction — every completed job feeds an EWMA of the ratio
//     actual_run / static_estimate into its (backend, size-class) cell.
//     The corrected estimate is static x EWMA (clamped), so a
//     systematically mis-calibrated model converges to the observed rate
//     at 1/alpha-sample granularity instead of staying wrong forever.
//  2. Feasibility — at admission the controller predicts the job's
//     end-to-end latency: the corrected service estimate on the backend
//     placement would choose, plus that backend's backlog (live mode:
//     device-pool clocks / CPU backlog plus the admitted-but-undispatched
//     pending ledger; deterministic mode: the virtual free clocks, which
//     make the prediction *exact*). A job whose prediction exceeds its
//     budget — min(deadline, class SLO) — is rejected with a typed
//     Status::SloError before it can occupy the queue. Distinct from
//     CapacityError: the queue may have had room, the job just cannot
//     finish in time.
//  3. Autoscaling signals — the same backlog arithmetic yields
//     svc.slo.pressure (backlog drain time over the tightest SLO) and
//     recommended worker/device deltas, which bench/ext_service's
//     --autoscale arm feeds back into Scheduler::SetActiveWorkers.
//
// Determinism: in deterministic mode learning is disabled (corrections
// stay at 1.0) and the feasibility check runs dispatcher-side against the
// virtual clocks in strict arrival order — so admitted jobs' placements
// are bit-identical to an admission-off replay, and the replay hash is
// admission-policy-invariant whenever nothing is rejected.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>

#include "common/status.h"
#include "svc/job.h"
#include "svc/placement.h"

namespace fpart::svc {

/// Size-class axis of the correction table — the same bucketing the
/// svc.place.err_pct.<backend>.<size> histograms use.
inline constexpr size_t kNumSizeClasses = 3;
inline constexpr size_t kNumBackends = 3;

/// Bucket of a job's WFQ demand (tuples): small < 64Ki <= medium < 1Mi
/// <= large.
size_t SizeClassOf(double demand_tuples);
const char* SizeClassName(size_t size_class);

/// \brief SLO / admission knobs (SchedulerConfig::slo).
struct SloConfig {
  /// Master switch. Off: no admission checks, no learning, corrections
  /// pinned at 1.0 — the scheduler behaves exactly as before.
  bool enabled = false;
  /// Per-class latency SLO in seconds (interactive/batch/best-effort);
  /// 0 = no SLO for that class. A job's budget is the tighter of its own
  /// deadline and its class SLO.
  std::array<double, kNumJobClasses> class_slo_seconds{};
  /// EWMA smoothing factor for the cost-model correction (0 < alpha <= 1;
  /// higher = faster adaptation, noisier).
  double ewma_alpha = 0.2;
  /// Clamp on the learned correction factor, so one wild sample cannot
  /// swing predictions by orders of magnitude.
  double correction_floor = 0.25;
  double correction_cap = 4.0;
  /// Learn the EWMA from completed-job feedback (live mode only;
  /// deterministic replays never learn, by design).
  bool learn = true;
  /// Pressure hysteresis band for the autoscaling recommendation:
  /// above `pressure_high` recommend growth, below `pressure_low`
  /// recommend shrink, in between recommend nothing.
  double pressure_high = 1.0;
  double pressure_low = 0.5;
};

/// \brief The admission controller. One per Scheduler; all methods are
/// thread-safe (clients admit concurrently in live mode).
class AdmissionController {
 public:
  AdmissionController(const SloConfig& config, size_t num_workers,
                      size_t num_devices);

  FPART_DISALLOW_COPY_AND_ASSIGN(AdmissionController);

  const SloConfig& config() const { return config_; }

  /// Current correction factor of a (backend, size-class) cell (1.0 until
  /// learned).
  double correction(Backend backend, size_t size_class) const;
  /// `est_seconds` scaled by the cell's correction factor.
  double Correct(Backend backend, double demand_tuples,
                 double est_seconds) const;

  /// The budget a job of `cls` with `deadline_seconds` (0 = none) is held
  /// to: min(deadline, class SLO), or +inf when neither applies.
  double BudgetSeconds(JobClass cls, double deadline_seconds) const;

  /// Completed-job feedback. Records |actual - placed_est| / actual into
  /// the svc.place.err_pct histograms (always — this is the error of the
  /// estimate the backlog clocks were actually charged with) and, when
  /// learning is enabled, folds actual / model_est — the *raw* static
  /// model's ratio, so the correction converges to the true rate instead
  /// of chasing its own output — into the cell's EWMA and publishes the
  /// svc.adm.correction gauges. No-op for non-positive inputs.
  void ObserveRun(Backend backend, double demand_tuples,
                  double model_est_seconds, double placed_est_seconds,
                  double actual_seconds, bool learn);

  /// \brief The feasibility verdict for one job.
  struct Verdict {
    bool admit = true;
    Status status;  ///< SloError detail when !admit
    /// Corrected end-to-end prediction (queue wait + service) and the
    /// budget it was compared against (+inf when unconstrained).
    double predicted_seconds = 0.0;
    double budget_seconds = std::numeric_limits<double>::infinity();
    /// The binding constraint was the job deadline (else the class SLO).
    bool deadline_bound = false;
  };

  /// Judge a prediction against the job's budget, count it, and type the
  /// rejection. `predicted_seconds` is the caller's corrected end-to-end
  /// latency estimate (the scheduler computes it from DecidePlacement on
  /// a correction-scaled input plus the backlog/pending terms — or, in
  /// deterministic mode, exactly from the virtual clocks).
  Verdict Judge(JobClass cls, double deadline_seconds,
                double predicted_seconds);

  /// Live mode: admitted-but-undispatched corrected work (seconds). Added
  /// at admit, credited when the dispatcher places the job; the admission
  /// prediction charges it as queue wait ahead of the candidate.
  void AddPending(double seconds);
  void SubPending(double seconds);
  double pending_seconds() const;

  /// \brief Backlog-derived autoscaling signal.
  struct Pressure {
    /// max(CPU, device) backlog drain time over the tightest SLO
    /// (reference 1 s when no SLO is configured). 1.0 = the backlog alone
    /// already consumes the whole budget.
    double value = 0.0;
    /// Recommended worker/device count changes (positive = grow). Workers
    /// follow the CPU-side pressure with hysteresis; devices are advisory
    /// (the pool is fixed-size today).
    int worker_delta = 0;
    int device_delta = 0;
  };

  /// Recompute the pressure signal from live backlogs and publish the
  /// svc.slo.pressure / delta gauges.
  Pressure UpdatePressure(double cpu_backlog_seconds,
                          double device_backlog_seconds,
                          size_t active_workers, size_t max_workers,
                          size_t num_devices);

  uint64_t considered() const {
    return considered_.load(std::memory_order_relaxed);
  }
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected_slo() const {
    return rejected_slo_.load(std::memory_order_relaxed);
  }
  uint64_t rejected_deadline() const {
    return rejected_deadline_.load(std::memory_order_relaxed);
  }
  uint64_t rejected(JobClass cls) const {
    return rejected_by_class_[static_cast<size_t>(cls)].load(
        std::memory_order_relaxed);
  }

 private:
  const SloConfig config_;
  const size_t num_workers_;
  const size_t num_devices_;

  /// Correction factors, bit-cast doubles updated by CAS (completions
  /// race in live mode; a lost EWMA sample is acceptable, a torn double
  /// is not).
  std::array<std::array<std::atomic<uint64_t>, kNumSizeClasses>,
             kNumBackends>
      correction_bits_;

  std::atomic<uint64_t> considered_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_slo_{0};
  std::atomic<uint64_t> rejected_deadline_{0};
  std::array<std::atomic<uint64_t>, kNumJobClasses> rejected_by_class_{};

  std::atomic<uint64_t> pending_bits_{0};
};

}  // namespace fpart::svc
