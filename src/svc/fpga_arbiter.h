// Lease arbitration for a pool of N (simulated) FPGA devices.
//
// The paper's platform has one QPI-attached FPGA shared by everything on
// the machine (Section 2.1); multi-FPGA deployments are the established
// scaling path for partitioning accelerators (RePart, PAPERS.md). The svc
// runtime serializes access through this pool: every device is an
// exclusive lease, and a job holds exactly one device while it runs on
// the simulator.
//
// Grant order: waiters are granted earliest-deadline-first, FIFO (arrival
// sequence) among equal or absent deadlines — the same intra-class
// ordering the admission queue uses, so a job's position cannot invert
// between queue and device. The granted waiter takes the *least
// backlogged free* device (its own placement charge discounted), which
// keeps the per-device backlog clocks balanced.
//
// Cancellation: a waiter whose job's cancel token fires leaves the wait
// set and returns Status::Cancelled; free devices are handed to the next
// waiter immediately (no orphaned grant, no stalled queue — per device).
// The scheduler calls NotifyCancelled() after setting a token so sleeping
// waiters re-check it.
//
// Backlog accounting: each device keeps its own backlog clock — the
// summed *model-time* estimate of work charged to it at placement but not
// yet credited back at completion. Placement reads the pool minimum as
// the device queueing delay (FpgaCostModel::PredictPoolLatencySeconds)
// and falls back to the CPU when that delay exceeds the CPU estimate.
//
// Observability: device i publishes svc.device.<i>.grants,
// svc.device.<i>.busy_us and svc.device.<i>.backlog_seconds
// (docs/observability.md).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "svc/job.h"

namespace fpart::obs {
class Counter;
class Gauge;
}  // namespace fpart::obs

namespace fpart::svc {

class DevicePool {
 public:
  /// \param num_devices  FPGA devices in the pool (0 is clamped to 1).
  explicit DevicePool(size_t num_devices = 1);
  FPART_DISALLOW_COPY_AND_ASSIGN(DevicePool);

  /// Block until `rec` holds one exclusive device lease (rec->device is
  /// set to its index), or until its cancel token fires
  /// (Status::Cancelled; the reservation is removed and the remaining
  /// waiters woken). On OK the caller MUST Release(rec).
  Status Acquire(JobRecord* rec);

  /// Return rec's device lease and hand it to the best remaining waiter.
  void Release(JobRecord* rec);

  /// Wake sleeping waiters so they re-check their cancel tokens.
  void NotifyCancelled();

  /// Charge `est_seconds` of placed work to the least-backlogged device's
  /// clock; returns the device index (the caller records it and credits
  /// the same device at completion).
  int ChargeLeastLoaded(double est_seconds);
  /// Credit work charged by ChargeLeastLoaded (device < 0 is a no-op).
  void Credit(int device, double est_seconds);

  /// Wall time spent holding device leases (svc.device.<i>.busy_us).
  void RecordBusy(int device, double wall_seconds);

  /// Smallest per-device backlog — the queueing delay a new device job
  /// would see on the pool.
  double backlog_seconds() const;
  /// Summed backlog across all devices.
  double total_backlog_seconds() const;
  double device_backlog_seconds(size_t device) const;
  /// Copy the per-device backlog clocks into *out (resized to the pool).
  void SnapshotBacklogs(std::vector<double>* out) const;

  /// Lifetime grant counts, pool-wide and per device.
  uint64_t grants() const;
  uint64_t device_grants(size_t device) const;
  size_t waiters() const;
  size_t num_devices() const { return devices_.size(); }

 private:
  using WaitKey = std::pair<double, uint64_t>;  // (deadline_key, seq)

  struct Device {
    const JobRecord* holder = nullptr;
    double backlog_seconds = 0.0;
    uint64_t grants = 0;
    obs::Counter* grants_metric = nullptr;
    obs::Counter* busy_us_metric = nullptr;
    obs::Gauge* backlog_metric = nullptr;
  };

  /// Least-backlogged free device for `rec` (its own placement charge
  /// discounted), or -1 when every device is held. Lock held.
  int PickFreeDeviceLocked(const JobRecord* rec) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Device> devices_;
  std::set<WaitKey> waiters_;
  size_t held_ = 0;
};

}  // namespace fpart::svc
