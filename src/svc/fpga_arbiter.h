// Exclusive lease arbitration for the single (simulated) FPGA device.
//
// The paper's platform has one QPI-attached FPGA shared by everything on
// the machine (Section 2.1); the svc runtime serializes access through
// this arbiter. Waiters are granted the device earliest-deadline-first,
// FIFO (arrival sequence) among equal or absent deadlines — the same
// ordering the admission queue uses, so a job's position cannot invert
// between queue and device.
//
// Cancellation: a waiter whose job's cancel token fires leaves the wait
// set and returns Status::Cancelled; the lease is handed to the next
// waiter immediately (no orphaned grant, no stalled queue). The scheduler
// calls NotifyCancelled() after setting a token so sleeping waiters
// re-check it.
//
// Backlog accounting: the arbiter tracks the summed *model-time* estimate
// of all device work placed but not yet finished. Placement reads it as
// the device queueing delay (FpgaCostModel::PredictLatencySeconds) and
// falls back to the CPU when that delay exceeds the CPU estimate.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <utility>

#include "common/status.h"
#include "svc/job.h"

namespace fpart::svc {

class FpgaArbiter {
 public:
  FpgaArbiter() = default;
  FPART_DISALLOW_COPY_AND_ASSIGN(FpgaArbiter);

  /// Block until `rec` holds the exclusive device lease, or until its
  /// cancel token fires (Status::Cancelled; the reservation is removed and
  /// the next waiter woken). On OK the caller MUST Release(rec).
  Status Acquire(JobRecord* rec);

  /// Return the lease and hand it to the best remaining waiter.
  void Release(JobRecord* rec);

  /// Wake sleeping waiters so they re-check their cancel tokens.
  void NotifyCancelled();

  /// Placed-but-unfinished device work in model seconds.
  void AddBacklog(double est_seconds);
  void SubBacklog(double est_seconds);
  double backlog_seconds() const;

  /// Lifetime grant count (lease handoffs = grants - 1 while serving).
  uint64_t grants() const;
  size_t waiters() const;

 private:
  using WaitKey = std::pair<double, uint64_t>;  // (deadline_key, seq)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const JobRecord* holder_ = nullptr;
  std::set<WaitKey> waiters_;
  double backlog_seconds_ = 0.0;
  uint64_t grants_ = 0;
};

}  // namespace fpart::svc
