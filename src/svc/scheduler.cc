#include "svc/scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/engine.h"
#include "join/hybrid_join.h"
#include "join/radix_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace fpart::svc {
namespace {

void NameCurrentThread(const std::string& prefix, size_t index) {
#if defined(__linux__)
  std::string name = prefix + "/" + std::to_string(index);
  if (name.size() > 15) name.resize(15);
  pthread_setname_np(pthread_self(), name.c_str());
#else
  (void)prefix;
  (void)index;
#endif
}

struct SvcMetrics {
  obs::Counter* submitted;
  obs::Counter* completed;
  obs::Counter* failed;
  obs::Counter* cancelled;
  obs::Counter* shed;
  obs::Counter* placed_cpu;
  obs::Counter* placed_fpga;
  obs::Counter* placed_hybrid;
  obs::Counter* placed_ties;
  obs::Counter* cpu_busy_us;
  obs::Counter* fpga_busy_us;
  obs::Histogram* queue_us;
  obs::Histogram* run_us;
  obs::Histogram* total_us;
  obs::Histogram* lease_wait_us;
  obs::Gauge* queue_depth;
  obs::Gauge* fpga_backlog;
  obs::Gauge* cpu_backlog;
  obs::Counter* class_submitted[kNumJobClasses];
  obs::Counter* class_completed[kNumJobClasses];
  obs::Counter* class_served_cost[kNumJobClasses];
  obs::Histogram* class_total_us[kNumJobClasses];
  /// Placement-model prediction error |run - estimate| / run (percent),
  /// per backend x job-size bucket. The feedback data the ROADMAP's EWMA
  /// correction item needs: a skewed histogram here means the static
  /// Section 4.8 constants are off for that (backend, size) cell.
  obs::Histogram* place_err[3][3];
};

/// Job-size bucket (by demand tuples) of the svc.place.err_pct metrics.
size_t PlaceErrSizeBucket(double demand_tuples) {
  if (demand_tuples < 64.0 * 1024) return 0;         // small
  if (demand_tuples < 1024.0 * 1024) return 1;       // medium
  return 2;                                          // large
}

SvcMetrics& Metrics() {
  static SvcMetrics m = [] {
    auto& reg = obs::Registry::Global();
    SvcMetrics x;
    x.submitted = reg.GetCounter("svc.jobs.submitted", "jobs",
                                 "jobs admitted to the service queue");
    x.completed = reg.GetCounter("svc.jobs.completed", "jobs",
                                 "jobs finished successfully");
    x.failed = reg.GetCounter("svc.jobs.failed", "jobs",
                              "jobs whose backend returned an error");
    x.cancelled = reg.GetCounter("svc.jobs.cancelled", "jobs",
                                 "jobs cancelled before or during execution");
    x.shed = reg.GetCounter("svc.jobs.shed", "jobs",
                            "jobs rejected at admission (queue full)");
    x.placed_cpu = reg.GetCounter("svc.placed.cpu", "jobs",
                                  "jobs placed on the CPU backend");
    x.placed_fpga = reg.GetCounter("svc.placed.fpga", "jobs",
                                   "jobs placed on the FPGA backend");
    x.placed_hybrid = reg.GetCounter("svc.placed.hybrid", "jobs",
                                     "join jobs placed on the hybrid path");
    x.placed_ties = reg.GetCounter(
        "svc.placed.ties", "jobs",
        "placements decided by the FPGA-preferred tie rule");
    x.cpu_busy_us = reg.GetCounter("svc.backend.cpu.busy_us", "us",
                                   "wall time workers spent in CPU jobs");
    x.fpga_busy_us = reg.GetCounter(
        "svc.backend.fpga.busy_us", "us",
        "wall time workers spent holding the device lease");
    x.queue_us = reg.GetHistogram("svc.job.queue_us", "us",
                                  "submit -> execution start");
    x.run_us = reg.GetHistogram("svc.job.run_us", "us",
                                "execution start -> completion");
    x.total_us = reg.GetHistogram("svc.job.total_us", "us",
                                  "submit -> completion");
    x.lease_wait_us = reg.GetHistogram("svc.fpga.lease_wait_us", "us",
                                       "wait for the exclusive FPGA lease");
    x.queue_depth = reg.GetGauge("svc.queue.depth", "jobs",
                                 "admitted jobs awaiting dispatch");
    x.fpga_backlog = reg.GetGauge("svc.fpga.backlog_seconds", "s",
                                  "placed-but-unfinished device model time");
    x.cpu_backlog = reg.GetGauge("svc.cpu.backlog_seconds", "s",
                                 "placed-but-unfinished CPU model time");
    for (size_t c = 0; c < kNumJobClasses; ++c) {
      const std::string prefix =
          std::string("svc.class.") + JobClassName(static_cast<JobClass>(c));
      x.class_submitted[c] = reg.GetCounter(
          prefix + ".submitted", "jobs", "jobs admitted in this class");
      x.class_completed[c] = reg.GetCounter(
          prefix + ".completed", "jobs", "jobs finished in this class");
      x.class_served_cost[c] = reg.GetCounter(
          prefix + ".served_cost", "tuples",
          "WFQ cost (tuples) dispatched from this class");
      x.class_total_us[c] = reg.GetHistogram(
          prefix + ".total_us", "us", "submit -> completion in this class");
    }
    static const char* kBackendNames[3] = {"cpu", "fpga", "hybrid"};
    static const char* kSizeNames[3] = {"small", "medium", "large"};
    for (size_t b = 0; b < 3; ++b) {
      for (size_t s = 0; s < 3; ++s) {
        x.place_err[b][s] = reg.GetHistogram(
            std::string("svc.place.err_pct.") + kBackendNames[b] + "." +
                kSizeNames[s],
            "pct", "placement estimate error |run-est|/run*100");
      }
    }
    return x;
  }();
  return m;
}

uint64_t ToMicros(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<uint64_t>(seconds * 1e6);
}

}  // namespace

const char* JobKindName(JobKind kind) {
  switch (kind) {
    case JobKind::kPartition:
      return "partition";
    case JobKind::kJoin:
      return "join";
    case JobKind::kRebalance:
      return "rebalance";
  }
  return "unknown";
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kCpu:
      return "cpu";
    case Backend::kFpga:
      return "fpga";
    case Backend::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

const char* JobClassName(JobClass cls) {
  switch (cls) {
    case JobClass::kInteractive:
      return "interactive";
    case JobClass::kBatch:
      return "batch";
    case JobClass::kBestEffort:
      return "besteffort";
  }
  return "unknown";
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kShed:
      return "shed";
  }
  return "unknown";
}

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kAdaptive:
      return "adaptive";
    case PlacementPolicy::kCpuOnly:
      return "cpu-only";
    case PlacementPolicy::kFpgaOnly:
      return "fpga-only";
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

Scheduler::Scheduler(SchedulerConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity, config_.deterministic,
             config_.class_weights),
      pool_(config_.fpga_devices),
      epoch_(std::chrono::steady_clock::now()),
      paused_(config_.start_paused) {
  if (config_.num_workers == 0) config_.num_workers = 1;
  if (config_.cpu_threads_per_job == 0) config_.cpu_threads_per_job = 1;
  config_.fpga_devices = pool_.num_devices();  // 0 clamps to 1
  virt_device_free_.assign(pool_.num_devices(), 0.0);
  virt_worker_free_.assign(config_.num_workers, 0.0);
  if (config_.cpu_threads_per_job > 1) {
    worker_pools_.resize(config_.num_workers);
    for (size_t w = 0; w < config_.num_workers; ++w) {
      worker_pools_[w] = std::make_unique<ThreadPool>(
          config_.cpu_threads_per_job,
          config_.name + "-j" + std::to_string(w), config_.affinity);
    }
  }
  worker_pins_ = Topology::Host().PinPlan(config_.affinity,
                                          config_.num_workers);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  workers_.reserve(config_.num_workers);
  for (size_t w = 0; w < config_.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

Scheduler::~Scheduler() { Shutdown(); }

double Scheduler::virtual_makespan_seconds() const {
  // virt_*_free_ are dispatcher-only; callers read them after Shutdown()
  // joined the dispatcher, which orders these loads after its last write.
  double makespan = 0.0;
  for (double t : virt_device_free_) makespan = std::max(makespan, t);
  for (double t : virt_worker_free_) makespan = std::max(makespan, t);
  return makespan;
}

double Scheduler::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

double Scheduler::cpu_backlog_seconds() const {
  std::unique_lock<std::mutex> lock(ready_mu_);
  return cpu_backlog_seconds_;
}

Result<JobHandle> Scheduler::Submit(const PartitionJobSpec& spec,
                                    const JobOptions& opts) {
  if (spec.input == nullptr) {
    return Status::InvalidArgument("partition job has no input relation");
  }
  auto rec = std::make_shared<JobRecord>();
  rec->kind = JobKind::kPartition;
  rec->partition = spec;
  rec->opts = opts;
  return SubmitRecord(std::move(rec));
}

Result<JobHandle> Scheduler::Submit(const JoinJobSpec& spec,
                                    const JobOptions& opts) {
  if (spec.r == nullptr || spec.s == nullptr) {
    return Status::InvalidArgument("join job needs both input relations");
  }
  auto rec = std::make_shared<JobRecord>();
  rec->kind = JobKind::kJoin;
  rec->join = spec;
  rec->opts = opts;
  return SubmitRecord(std::move(rec));
}

Result<JobHandle> Scheduler::Submit(const RebalanceJobSpec& spec,
                                    const JobOptions& opts) {
  if (!spec.work) {
    return Status::InvalidArgument("rebalance job has no work function");
  }
  auto rec = std::make_shared<JobRecord>();
  rec->kind = JobKind::kRebalance;
  rec->rebalance = spec;
  rec->opts = opts;
  if (rec->opts.pinned.has_value()) rec->opts.pinned = Backend::kCpu;
  return SubmitRecord(std::move(rec));
}

Result<JobHandle> Scheduler::SubmitRecord(std::shared_ptr<JobRecord> rec) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("scheduler is shut down");
  }
  rec->id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  rec->seq = rec->opts.arrival_seq != kAutoArrivalSeq
                 ? rec->opts.arrival_seq
                 : next_seq_.fetch_add(1, std::memory_order_relaxed);
  rec->cls = rec->opts.job_class;
  uint64_t demand_tuples = 1;
  switch (rec->kind) {
    case JobKind::kPartition:
      demand_tuples = rec->partition.input->size();
      break;
    case JobKind::kJoin:
      demand_tuples = rec->join.r->size() + rec->join.s->size();
      break;
    case JobKind::kRebalance:
      demand_tuples = rec->rebalance.cost_tuples;
      break;
  }
  rec->wfq_cost = std::max(1.0, static_cast<double>(demand_tuples));
  rec->submit_seconds = NowSeconds();
  if (rec->opts.deadline_seconds > 0.0) {
    rec->deadline_key = rec->submit_seconds + rec->opts.deadline_seconds;
  }
  JobHandle handle(rec);
  Status pushed = queue_.Push(rec);
  if (!pushed.ok()) {
    if (pushed.IsCapacityError()) {
      Metrics().shed->Add();
      JobOutcome out;
      out.status = pushed;
      CompleteJob(rec, JobState::kShed, pushed, out);
    }
    return pushed;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Metrics().submitted->Add();
  Metrics().class_submitted[static_cast<size_t>(rec->cls)]->Add();
  Metrics().queue_depth->Set(static_cast<double>(queue_.depth()));
  return handle;
}

void Scheduler::Resume() {
  {
    std::unique_lock<std::mutex> lock(pause_mu_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void Scheduler::Cancel(const JobHandle& handle) {
  handle.Cancel();
  pool_.NotifyCancelled();
}

void Scheduler::Shutdown() {
  bool was = shutdown_.exchange(true, std::memory_order_acq_rel);
  if (was) return;
  queue_.Close();
  Resume();  // a paused dispatcher must still drain
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::unique_lock<std::mutex> lock(ready_mu_);
    dispatch_done_ = true;
  }
  ready_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  worker_pools_.clear();
}

// Rebalance rebuilds are a memcpy-speed snapshot + one scatter pass; a
// flat tuple rate is close enough for backlog accounting (the err_pct
// histograms below tell us how close).
constexpr double kRebalanceTuplesPerSecond = 250e6;

void Scheduler::PlaceJob(JobRecord* rec) {
  if (rec->kind == JobKind::kRebalance) {
    // Always the host CPU: the rebuild manipulates host-resident buckets;
    // there is no device kernel for it. Policy and pins are ignored, but
    // the backlog/virtual-clock charging below matches the CPU path.
    const double est = static_cast<double>(rec->rebalance.cost_tuples) /
                       kRebalanceTuplesPerSecond;
    rec->outcome.backend = Backend::kCpu;
    rec->placed_estimate_seconds = est;
    const double t_arrival = config_.deterministic
                                 ? rec->opts.virtual_arrival_seconds
                                 : rec->submit_seconds;
    if (config_.deterministic) {
      const size_t w = static_cast<size_t>(
          std::min_element(virt_worker_free_.begin(),
                           virt_worker_free_.end()) -
          virt_worker_free_.begin());
      const double start = std::max(t_arrival, virt_worker_free_[w]);
      virt_worker_free_[w] = start + est;
      rec->outcome.virtual_queue_seconds = start - t_arrival;
      rec->outcome.virtual_run_seconds = est;
    } else {
      std::unique_lock<std::mutex> lock(ready_mu_);
      cpu_backlog_seconds_ += est;
      Metrics().cpu_backlog->Set(cpu_backlog_seconds_);
    }
    Metrics().placed_cpu->Add();
    return;
  }

  PlacementInput in;
  in.kind = rec->kind;
  in.cpu_threads = config_.cpu_threads_per_job;
  if (rec->kind == JobKind::kPartition) {
    const PartitionRequest& req = rec->partition.request;
    in.n_tuples = rec->partition.input->size();
    in.fanout = req.fanout;
    in.mode = req.output_mode;
    in.layout = req.layout;
    in.link = req.link;
    in.hash = req.hash;
    in.interference = req.interference;
  } else {
    in.r_tuples = rec->join.r->size();
    in.s_tuples = rec->join.s->size();
    in.fanout = rec->join.fanout;
    in.hash = rec->join.hash;
    in.mode = OutputMode::kHist;  // the hybrid path partitions HIST-mode
    in.link = LinkKind::kXeonFpga;
  }

  const double t_arrival = config_.deterministic
                               ? rec->opts.virtual_arrival_seconds
                               : rec->submit_seconds;
  size_t virt_worker = 0;
  size_t virt_device = 0;
  if (config_.deterministic) {
    virt_worker = static_cast<size_t>(
        std::min_element(virt_worker_free_.begin(), virt_worker_free_.end()) -
        virt_worker_free_.begin());
    // A device job queues on the least-loaded virtual device clock.
    virt_device = static_cast<size_t>(
        std::min_element(virt_device_free_.begin(), virt_device_free_.end()) -
        virt_device_free_.begin());
    in.fpga_devices = virt_device_free_.size();
    in.fpga_backlog_seconds =
        std::max(0.0, virt_device_free_[virt_device] - t_arrival);
    in.cpu_backlog_seconds =
        std::max(0.0, virt_worker_free_[virt_worker] - t_arrival);
  } else {
    pool_.SnapshotBacklogs(&backlog_scratch_);
    in.device_backlogs = backlog_scratch_.data();
    in.fpga_devices = backlog_scratch_.size();
    in.fpga_backlog_seconds = pool_.backlog_seconds();
    std::unique_lock<std::mutex> lock(ready_mu_);
    in.cpu_backlog_seconds =
        cpu_backlog_seconds_ / static_cast<double>(config_.num_workers);
  }

  PlacementDecision d = DecidePlacement(in);
  const Backend device_backend =
      rec->kind == JobKind::kPartition ? Backend::kFpga : Backend::kHybrid;
  Backend backend = d.backend;
  if (rec->opts.pinned.has_value()) {
    backend = *rec->opts.pinned;
  } else {
    switch (config_.policy) {
      case PlacementPolicy::kAdaptive:
        break;
      case PlacementPolicy::kCpuOnly:
        backend = Backend::kCpu;
        break;
      case PlacementPolicy::kFpgaOnly:
        backend = device_backend;
        break;
      case PlacementPolicy::kRoundRobin:
        backend = rec->seq % 2 == 0 ? device_backend : Backend::kCpu;
        break;
    }
  }
  // A partition job can never be "hybrid" and a join never plain-"fpga":
  // normalize bad pins to the device backend of the job kind.
  if (backend != Backend::kCpu) backend = device_backend;

  rec->outcome.backend = backend;
  rec->placed_estimate_seconds =
      backend == Backend::kCpu ? d.est_cpu_seconds : d.device_seconds;

  // Charge the chosen backend's backlog (credited back at completion) and,
  // in deterministic mode, advance the virtual clocks. The virtual start
  // and service time are stamped on the outcome: they are the replay's
  // noise-free latency decomposition (JobOutcome::virtual_*_seconds).
  if (config_.deterministic) {
    if (backend == Backend::kCpu) {
      const double start =
          std::max(t_arrival, virt_worker_free_[virt_worker]);
      virt_worker_free_[virt_worker] = start + d.est_cpu_seconds;
      rec->outcome.virtual_queue_seconds = start - t_arrival;
      rec->outcome.virtual_run_seconds = d.est_cpu_seconds;
    } else {
      // Device jobs hold a worker for the whole run and their device for
      // the lease phase; the chosen device's clock gates the start.
      const double start =
          std::max({t_arrival, virt_device_free_[virt_device],
                    virt_worker_free_[virt_worker]});
      virt_device_free_[virt_device] = start + d.device_seconds;
      virt_worker_free_[virt_worker] = start + d.est_fpga_seconds;
      rec->outcome.virtual_queue_seconds = start - t_arrival;
      rec->outcome.virtual_run_seconds = d.est_fpga_seconds;
    }
  } else if (backend == Backend::kCpu) {
    std::unique_lock<std::mutex> lock(ready_mu_);
    cpu_backlog_seconds_ += d.est_cpu_seconds;
    Metrics().cpu_backlog->Set(cpu_backlog_seconds_);
  } else {
    rec->charged_device = pool_.ChargeLeastLoaded(d.device_seconds);
    Metrics().fpga_backlog->Set(pool_.backlog_seconds());
  }

  auto& m = Metrics();
  switch (backend) {
    case Backend::kCpu:
      m.placed_cpu->Add();
      break;
    case Backend::kFpga:
      m.placed_fpga->Add();
      break;
    case Backend::kHybrid:
      m.placed_hybrid->Add();
      break;
  }
  if (d.tie && !rec->opts.pinned.has_value() &&
      config_.policy == PlacementPolicy::kAdaptive) {
    m.placed_ties->Add();
  }
}

void Scheduler::DispatcherLoop() {
  NameCurrentThread(config_.name + "-disp", 0);
  {
    std::unique_lock<std::mutex> lock(pause_mu_);
    pause_cv_.wait(lock, [this] { return !paused_; });
  }
  for (;;) {
    std::shared_ptr<JobRecord> rec = queue_.Pop();
    Metrics().queue_depth->Set(static_cast<double>(queue_.depth()));
    if (rec == nullptr) break;  // closed and drained
    Metrics().class_served_cost[static_cast<size_t>(rec->cls)]->Add(
        static_cast<uint64_t>(rec->wfq_cost));
    PlaceJob(rec.get());
    {
      std::unique_lock<std::mutex> lock(ready_mu_);
      ready_.push_back(std::move(rec));
    }
    ready_cv_.notify_one();
  }
  {
    std::unique_lock<std::mutex> lock(ready_mu_);
    dispatch_done_ = true;
  }
  ready_cv_.notify_all();
}

void Scheduler::WorkerLoop(size_t index) {
  NameCurrentThread(config_.name + "-wkr", index);
  {
    // Pin the job worker itself (its pool, if any, was pinned by its own
    // constructor) and publish its identity for trace attribution.
    const Topology::Pin& pin = worker_pins_[index];
    const bool pinned = PinCurrentThreadToCpu(pin.cpu);
    WorkerContext ctx;
    ctx.worker = static_cast<int>(index);
    ctx.node = pin.node;
    ctx.cpu = pinned ? pin.cpu : -1;
    ctx.pool = config_.name.c_str();
    SetCurrentWorkerContext(ctx);
  }
  for (;;) {
    std::shared_ptr<JobRecord> rec;
    {
      std::unique_lock<std::mutex> lock(ready_mu_);
      ready_cv_.wait(lock,
                     [this] { return !ready_.empty() || dispatch_done_; });
      if (ready_.empty()) {
        if (dispatch_done_) return;
        continue;
      }
      rec = std::move(ready_.front());
      ready_.pop_front();
    }
    ExecuteJob(rec, index);
  }
}

void Scheduler::ExecuteJob(const std::shared_ptr<JobRecord>& rec,
                           size_t worker) {
  auto& m = Metrics();
  const double start_seconds = NowSeconds();
  const double queue_seconds = start_seconds - rec->submit_seconds;
  m.queue_us->Record(ToMicros(queue_seconds));
  obs::Tracer& tracer = obs::Tracer::Global();
  if (tracer.enabled()) {
    // The queue phase spans two threads (client submit -> worker start),
    // so it is emitted manually rather than via the same-thread TraceSpan.
    const double end_us = tracer.NowUs();
    const double dur_us = queue_seconds * 1e6;
    tracer.CompleteEvent("svc.job.queue", "svc",
                         std::max(0.0, end_us - dur_us), dur_us,
                         obs::kHostTracePid, obs::CurrentTraceTid());
  }

  JobOutcome out;
  out.backend = rec->outcome.backend;
  out.queue_seconds = queue_seconds;
  out.virtual_queue_seconds = rec->outcome.virtual_queue_seconds;
  out.virtual_run_seconds = rec->outcome.virtual_run_seconds;

  Status status;
  if (rec->cancel.load(std::memory_order_relaxed)) {
    status = Status::Cancelled("job " + std::to_string(rec->id) +
                               " cancelled while queued");
  } else {
    obs::TraceSpan span("svc.run", "svc");
    switch (rec->kind) {
      case JobKind::kPartition:
        status = RunPartitionJob(rec.get(), worker, &out);
        break;
      case JobKind::kJoin:
        status = RunJoinJob(rec.get(), worker, &out);
        break;
      case JobKind::kRebalance:
        status = RunRebalanceJob(rec.get(), &out);
        break;
    }
  }
  out.run_seconds = NowSeconds() - start_seconds;
  m.run_us->Record(ToMicros(out.run_seconds));
  m.total_us->Record(ToMicros(out.queue_seconds + out.run_seconds));
  if (status.ok() && out.run_seconds > 0.0 &&
      rec->placed_estimate_seconds > 0.0) {
    // Feedback for the placement model: how far off was the estimate the
    // backlog clocks were charged with, per backend x size bucket.
    const double err_pct =
        std::abs(out.run_seconds - rec->placed_estimate_seconds) /
        out.run_seconds * 100.0;
    m.place_err[static_cast<size_t>(out.backend)]
               [PlaceErrSizeBucket(rec->wfq_cost)]
                   ->Record(static_cast<uint64_t>(err_pct));
  }

  // Credit the backlog charged at placement.
  if (!config_.deterministic) {
    if (out.backend == Backend::kCpu) {
      std::unique_lock<std::mutex> lock(ready_mu_);
      cpu_backlog_seconds_ =
          std::max(0.0, cpu_backlog_seconds_ - rec->placed_estimate_seconds);
      Metrics().cpu_backlog->Set(cpu_backlog_seconds_);
    } else {
      pool_.Credit(rec->charged_device, rec->placed_estimate_seconds);
      Metrics().fpga_backlog->Set(pool_.backlog_seconds());
    }
  }

  JobState state = JobState::kCompleted;
  if (status.IsCancelled()) {
    state = JobState::kCancelled;
  } else if (!status.ok()) {
    state = JobState::kFailed;
  }
  CompleteJob(rec, state, std::move(status), out);
}

Status Scheduler::RunPartitionJob(JobRecord* rec, size_t worker,
                                  JobOutcome* out) {
  PartitionRequest req = rec->partition.request;
  req.cancel = &rec->cancel;
  auto& m = Metrics();

  if (out->backend == Backend::kCpu) {
    req.engine = Engine::kCpu;
    req.num_threads = config_.cpu_threads_per_job;
    req.pool = worker_pools_.empty() ? nullptr : worker_pools_[worker].get();
    cpu_busy_.fetch_add(1, std::memory_order_relaxed);
    const double t0 = NowSeconds();
    auto result = RunPartition<Tuple8>(req, *rec->partition.input);
    m.cpu_busy_us->Add(ToMicros(NowSeconds() - t0));
    cpu_busy_.fetch_sub(1, std::memory_order_relaxed);
    FPART_RETURN_NOT_OK(result.status());
    const auto& report = result.ValueOrDie();
    out->device_seconds = 0.0;
    std::vector<uint64_t> counts(report.output.num_partitions());
    for (size_t p = 0; p < counts.size(); ++p) {
      counts[p] = report.output.part(p).num_tuples;
    }
    out->checksum = HistogramChecksum(counts.data(), counts.size());
    return Status::OK();
  }

  // FPGA placement: one exclusive device lease from the pool first.
  const double wait0 = NowSeconds();
  FPART_RETURN_NOT_OK(pool_.Acquire(rec));
  const int device = rec->device;
  const double lease0 = NowSeconds();
  m.lease_wait_us->Record(ToMicros(lease0 - wait0));

  req.engine = Engine::kFpgaSim;
  if (config_.adaptive_interference && !config_.deterministic &&
      cpu_busy_.load(std::memory_order_relaxed) > 0) {
    req.interference = Interference::kInterfered;
  }
  auto result = RunPartition<Tuple8>(req, *rec->partition.input);
  // Stamp before Release: once the lease is handed on, this thread may be
  // descheduled for a while and a late stamp would overlap the next
  // holder's window (busy_us must never exceed wall time per device).
  const double lease_end = NowSeconds();
  pool_.Release(rec);
  const double lease_seconds = lease_end - lease0;
  m.fpga_busy_us->Add(ToMicros(lease_seconds));
  pool_.RecordBusy(device, lease_seconds);
  FPART_RETURN_NOT_OK(result.status());
  const auto& report = result.ValueOrDie();
  out->device_seconds = report.seconds;
  std::vector<uint64_t> counts(report.output.num_partitions());
  for (size_t p = 0; p < counts.size(); ++p) {
    counts[p] = report.output.part(p).num_tuples;
  }
  out->checksum = HistogramChecksum(counts.data(), counts.size());
  return Status::OK();
}

Status Scheduler::RunRebalanceJob(JobRecord* rec, JobOutcome* out) {
  auto& m = Metrics();
  cpu_busy_.fetch_add(1, std::memory_order_relaxed);
  const double t0 = NowSeconds();
  Status status = rec->rebalance.work(&rec->cancel);
  m.cpu_busy_us->Add(ToMicros(NowSeconds() - t0));
  cpu_busy_.fetch_sub(1, std::memory_order_relaxed);
  out->device_seconds = 0.0;
  return status;
}

Status Scheduler::RunJoinJob(JobRecord* rec, size_t worker, JobOutcome* out) {
  auto& m = Metrics();
  ThreadPool* pool =
      worker_pools_.empty() ? nullptr : worker_pools_[worker].get();

  if (out->backend == Backend::kCpu) {
    CpuJoinConfig config;
    config.fanout = rec->join.fanout;
    config.hash = rec->join.hash;
    config.num_threads = config_.cpu_threads_per_job;
    config.pool = pool;
    cpu_busy_.fetch_add(1, std::memory_order_relaxed);
    const double t0 = NowSeconds();
    auto result = CpuRadixJoin(config, *rec->join.r, *rec->join.s);
    m.cpu_busy_us->Add(ToMicros(NowSeconds() - t0));
    cpu_busy_.fetch_sub(1, std::memory_order_relaxed);
    FPART_RETURN_NOT_OK(result.status());
    const JoinResult& jr = result.ValueOrDie();
    out->matches = jr.matches;
    out->checksum = jr.checksum;
    out->device_seconds = 0.0;
    return Status::OK();
  }

  // Hybrid: the lease covers only the device partitioning passes; the CPU
  // build+probe runs after Release so queued device jobs can proceed.
  FpgaPartitionerConfig fpga;
  fpga.fanout = rec->join.fanout;
  fpga.hash = rec->join.hash;
  fpga.output_mode = OutputMode::kHist;  // never overflows
  fpga.layout = LayoutMode::kRid;
  fpga.link = LinkKind::kXeonFpga;
  fpga.sim_mode = config_.sim_mode;
  fpga.sim_cache = config_.sim_cache;
  fpga.xcheck = config_.xcheck;
  fpga.cancel = &rec->cancel;
  if (config_.adaptive_interference && !config_.deterministic &&
      cpu_busy_.load(std::memory_order_relaxed) > 0) {
    fpga.interference = Interference::kInterfered;
  }

  const double wait0 = NowSeconds();
  FPART_RETURN_NOT_OK(pool_.Acquire(rec));
  const int device_index = rec->device;
  const double lease0 = NowSeconds();
  m.lease_wait_us->Record(ToMicros(lease0 - wait0));

  auto run_device = [&]() -> Result<std::pair<FpgaRunResult<Tuple8>,
                                              FpgaRunResult<Tuple8>>> {
    FPART_ASSIGN_OR_RETURN(
        FpgaRunResult<Tuple8> pr,
        internal::HybridPartition(fpga, *rec->join.r));
    FPART_ASSIGN_OR_RETURN(
        FpgaRunResult<Tuple8> ps,
        internal::HybridPartition(fpga, *rec->join.s));
    return std::make_pair(std::move(pr), std::move(ps));
  };
  auto device = run_device();
  const double lease_end = NowSeconds();  // before Release; see partition path
  pool_.Release(rec);
  const double lease_seconds = lease_end - lease0;
  m.fpga_busy_us->Add(ToMicros(lease_seconds));
  pool_.RecordBusy(device_index, lease_seconds);
  FPART_RETURN_NOT_OK(device.status());
  auto& [pr, ps] = device.ValueOrDie();
  out->device_seconds = pr.seconds + ps.seconds;

  if (rec->cancel.load(std::memory_order_relaxed)) {
    return Status::Cancelled("job " + std::to_string(rec->id) +
                             " cancelled after device phase");
  }

  cpu_busy_.fetch_add(1, std::memory_order_relaxed);
  const double t0 = NowSeconds();
  BuildProbeStats bp = ParallelBuildProbe(
      pr.output, ps.output, config_.cpu_threads_per_job, pool,
      static_cast<const Tuple8*>(nullptr), /*prefetch_distance=*/16);
  m.cpu_busy_us->Add(ToMicros(NowSeconds() - t0));
  cpu_busy_.fetch_sub(1, std::memory_order_relaxed);

  out->matches = bp.matches;
  out->checksum = bp.checksum;
  return Status::OK();
}

void Scheduler::CompleteJob(const std::shared_ptr<JobRecord>& rec,
                            JobState state, Status status,
                            JobOutcome outcome) {
  auto& m = Metrics();
  switch (state) {
    case JobState::kCompleted:
      m.completed->Add();
      m.class_completed[static_cast<size_t>(rec->cls)]->Add();
      m.class_total_us[static_cast<size_t>(rec->cls)]->Record(
          ToMicros(outcome.queue_seconds + outcome.run_seconds));
      break;
    case JobState::kFailed:
      m.failed->Add();
      break;
    case JobState::kCancelled:
      m.cancelled->Add();
      break;
    default:
      break;  // kShed counted at admission
  }
  outcome.state = state;
  outcome.status = std::move(status);
  {
    std::unique_lock<std::mutex> lock(rec->mu);
    rec->outcome = std::move(outcome);
    rec->done = true;
  }
  rec->cv.notify_all();
  // After the publish: the outcome is immutable once done, so reading it
  // without the lock is safe, and a callback that blocks can no longer
  // delay handle waiters.
  if (rec->opts.on_complete) rec->opts.on_complete(rec->outcome);
}

}  // namespace fpart::svc
