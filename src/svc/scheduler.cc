#include "svc/scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/failpoint.h"
#include "core/engine.h"
#include "join/hybrid_join.h"
#include "join/radix_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace fpart::svc {
namespace {

void NameCurrentThread(const std::string& prefix, size_t index) {
#if defined(__linux__)
  std::string name = prefix + "/" + std::to_string(index);
  if (name.size() > 15) name.resize(15);
  pthread_setname_np(pthread_self(), name.c_str());
#else
  (void)prefix;
  (void)index;
#endif
}

struct SvcMetrics {
  obs::Counter* submitted;
  obs::Counter* completed;
  obs::Counter* failed;
  obs::Counter* cancelled;
  obs::Counter* shed;
  obs::Counter* placed_cpu;
  obs::Counter* placed_fpga;
  obs::Counter* placed_hybrid;
  obs::Counter* placed_ties;
  obs::Counter* cpu_busy_us;
  obs::Counter* fpga_busy_us;
  obs::Histogram* queue_us;
  obs::Histogram* run_us;
  obs::Histogram* total_us;
  obs::Histogram* lease_wait_us;
  obs::Gauge* queue_depth;
  obs::Gauge* fpga_backlog;
  obs::Gauge* cpu_backlog;
  obs::Counter* class_submitted[kNumJobClasses];
  obs::Counter* class_completed[kNumJobClasses];
  obs::Counter* class_served_cost[kNumJobClasses];
  obs::Histogram* class_total_us[kNumJobClasses];
};

SvcMetrics& Metrics() {
  static SvcMetrics m = [] {
    auto& reg = obs::Registry::Global();
    SvcMetrics x;
    x.submitted = reg.GetCounter("svc.jobs.submitted", "jobs",
                                 "jobs admitted to the service queue");
    x.completed = reg.GetCounter("svc.jobs.completed", "jobs",
                                 "jobs finished successfully");
    x.failed = reg.GetCounter("svc.jobs.failed", "jobs",
                              "jobs whose backend returned an error");
    x.cancelled = reg.GetCounter("svc.jobs.cancelled", "jobs",
                                 "jobs cancelled before or during execution");
    x.shed = reg.GetCounter("svc.jobs.shed", "jobs",
                            "jobs rejected at admission (queue full)");
    x.placed_cpu = reg.GetCounter("svc.placed.cpu", "jobs",
                                  "jobs placed on the CPU backend");
    x.placed_fpga = reg.GetCounter("svc.placed.fpga", "jobs",
                                   "jobs placed on the FPGA backend");
    x.placed_hybrid = reg.GetCounter("svc.placed.hybrid", "jobs",
                                     "join jobs placed on the hybrid path");
    x.placed_ties = reg.GetCounter(
        "svc.placed.ties", "jobs",
        "placements decided by the FPGA-preferred tie rule");
    x.cpu_busy_us = reg.GetCounter("svc.backend.cpu.busy_us", "us",
                                   "wall time workers spent in CPU jobs");
    x.fpga_busy_us = reg.GetCounter(
        "svc.backend.fpga.busy_us", "us",
        "wall time workers spent holding the device lease");
    x.queue_us = reg.GetHistogram("svc.job.queue_us", "us",
                                  "submit -> execution start");
    x.run_us = reg.GetHistogram("svc.job.run_us", "us",
                                "execution start -> completion");
    x.total_us = reg.GetHistogram("svc.job.total_us", "us",
                                  "submit -> completion");
    x.lease_wait_us = reg.GetHistogram("svc.fpga.lease_wait_us", "us",
                                       "wait for the exclusive FPGA lease");
    x.queue_depth = reg.GetGauge("svc.queue.depth", "jobs",
                                 "admitted jobs awaiting dispatch");
    x.fpga_backlog = reg.GetGauge("svc.fpga.backlog_seconds", "s",
                                  "placed-but-unfinished device model time");
    x.cpu_backlog = reg.GetGauge("svc.cpu.backlog_seconds", "s",
                                 "placed-but-unfinished CPU model time");
    for (size_t c = 0; c < kNumJobClasses; ++c) {
      const std::string prefix =
          std::string("svc.class.") + JobClassName(static_cast<JobClass>(c));
      x.class_submitted[c] = reg.GetCounter(
          prefix + ".submitted", "jobs", "jobs admitted in this class");
      x.class_completed[c] = reg.GetCounter(
          prefix + ".completed", "jobs", "jobs finished in this class");
      x.class_served_cost[c] = reg.GetCounter(
          prefix + ".served_cost", "tuples",
          "WFQ cost (tuples) dispatched from this class");
      x.class_total_us[c] = reg.GetHistogram(
          prefix + ".total_us", "us", "submit -> completion in this class");
    }
    return x;
  }();
  return m;
}

uint64_t ToMicros(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<uint64_t>(seconds * 1e6);
}

}  // namespace

const char* JobKindName(JobKind kind) {
  switch (kind) {
    case JobKind::kPartition:
      return "partition";
    case JobKind::kJoin:
      return "join";
    case JobKind::kRebalance:
      return "rebalance";
  }
  return "unknown";
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kCpu:
      return "cpu";
    case Backend::kFpga:
      return "fpga";
    case Backend::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

const char* JobClassName(JobClass cls) {
  switch (cls) {
    case JobClass::kInteractive:
      return "interactive";
    case JobClass::kBatch:
      return "batch";
    case JobClass::kBestEffort:
      return "besteffort";
  }
  return "unknown";
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kShed:
      return "shed";
    case JobState::kRejected:
      return "rejected";
  }
  return "unknown";
}

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kAdaptive:
      return "adaptive";
    case PlacementPolicy::kCpuOnly:
      return "cpu-only";
    case PlacementPolicy::kFpgaOnly:
      return "fpga-only";
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

Scheduler::Scheduler(SchedulerConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity, config_.deterministic,
             config_.class_weights),
      pool_(config_.fpga_devices),
      epoch_(std::chrono::steady_clock::now()),
      paused_(config_.start_paused) {
  if (config_.num_workers == 0) config_.num_workers = 1;
  if (config_.cpu_threads_per_job == 0) config_.cpu_threads_per_job = 1;
  config_.fpga_devices = pool_.num_devices();  // 0 clamps to 1
  // Autoscaling headroom: live mode may park workers beyond num_workers;
  // deterministic mode pins the worker count (virtual clocks are sized
  // once and are part of the replay's identity).
  if (config_.max_workers < config_.num_workers || config_.deterministic) {
    config_.max_workers = config_.num_workers;
  }
  admission_ = std::make_unique<AdmissionController>(
      config_.slo, config_.num_workers, pool_.num_devices());
  active_workers_.store(config_.num_workers, std::memory_order_release);
  virt_device_free_.assign(pool_.num_devices(), 0.0);
  virt_worker_free_.assign(config_.num_workers, 0.0);
  if (config_.cpu_threads_per_job > 1) {
    worker_pools_.resize(config_.max_workers);
    for (size_t w = 0; w < config_.max_workers; ++w) {
      worker_pools_[w] = std::make_unique<ThreadPool>(
          config_.cpu_threads_per_job,
          config_.name + "-j" + std::to_string(w), config_.affinity);
    }
  }
  worker_pins_ = Topology::Host().PinPlan(config_.affinity,
                                          config_.max_workers);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  workers_.reserve(config_.max_workers);
  for (size_t w = 0; w < config_.max_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

bool Scheduler::SetActiveWorkers(size_t n) {
  if (config_.deterministic) return false;
  n = std::min(std::max<size_t>(1, n), config_.max_workers);
  active_workers_.store(n, std::memory_order_release);
  // Wake everyone: a freshly activated worker is parked on the same cv as
  // the busy ones, and a targeted notify could land on a still-parked
  // thread that just re-sleeps (lost wakeup).
  ready_cv_.notify_all();
  return true;
}

AdmissionController::Pressure Scheduler::slo_pressure() {
  return admission_->UpdatePressure(
      cpu_backlog_seconds(), pool_.total_backlog_seconds(), active_workers(),
      config_.max_workers, pool_.num_devices());
}

Scheduler::~Scheduler() { Shutdown(); }

double Scheduler::virtual_makespan_seconds() const {
  // virt_*_free_ are dispatcher-only; callers read them after Shutdown()
  // joined the dispatcher, which orders these loads after its last write.
  double makespan = 0.0;
  for (double t : virt_device_free_) makespan = std::max(makespan, t);
  for (double t : virt_worker_free_) makespan = std::max(makespan, t);
  return makespan;
}

double Scheduler::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

double Scheduler::cpu_backlog_seconds() const {
  std::unique_lock<std::mutex> lock(ready_mu_);
  return cpu_backlog_seconds_;
}

Result<JobHandle> Scheduler::Submit(const PartitionJobSpec& spec,
                                    const JobOptions& opts) {
  if (spec.input == nullptr) {
    return Status::InvalidArgument("partition job has no input relation");
  }
  auto rec = std::make_shared<JobRecord>();
  rec->kind = JobKind::kPartition;
  rec->partition = spec;
  rec->opts = opts;
  return SubmitRecord(std::move(rec));
}

Result<JobHandle> Scheduler::Submit(const JoinJobSpec& spec,
                                    const JobOptions& opts) {
  if (spec.r == nullptr || spec.s == nullptr) {
    return Status::InvalidArgument("join job needs both input relations");
  }
  auto rec = std::make_shared<JobRecord>();
  rec->kind = JobKind::kJoin;
  rec->join = spec;
  rec->opts = opts;
  return SubmitRecord(std::move(rec));
}

Result<JobHandle> Scheduler::Submit(const RebalanceJobSpec& spec,
                                    const JobOptions& opts) {
  if (!spec.work) {
    return Status::InvalidArgument("rebalance job has no work function");
  }
  auto rec = std::make_shared<JobRecord>();
  rec->kind = JobKind::kRebalance;
  rec->rebalance = spec;
  rec->opts = opts;
  if (rec->opts.pinned.has_value()) rec->opts.pinned = Backend::kCpu;
  return SubmitRecord(std::move(rec));
}

Result<JobHandle> Scheduler::SubmitRecord(std::shared_ptr<JobRecord> rec) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("scheduler is shut down");
  }
  rec->id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  rec->seq = rec->opts.arrival_seq != kAutoArrivalSeq
                 ? rec->opts.arrival_seq
                 : next_seq_.fetch_add(1, std::memory_order_relaxed);
  rec->cls = rec->opts.job_class;
  uint64_t demand_tuples = 1;
  switch (rec->kind) {
    case JobKind::kPartition:
      demand_tuples = rec->partition.input->size();
      break;
    case JobKind::kJoin:
      demand_tuples = rec->join.r->size() + rec->join.s->size();
      break;
    case JobKind::kRebalance:
      demand_tuples = rec->rebalance.cost_tuples;
      break;
  }
  rec->wfq_cost = std::max(1.0, static_cast<double>(demand_tuples));
  rec->submit_seconds = NowSeconds();
  if (rec->opts.deadline_seconds > 0.0) {
    rec->deadline_key = rec->submit_seconds + rec->opts.deadline_seconds;
  }
  if (config_.slo.enabled && !config_.deterministic) {
    // Live-mode SLO admission runs here, synchronously, so a rejected
    // client learns before the job ever occupies the queue. Deterministic
    // mode judges dispatcher-side (PlaceJob) instead, where the virtual
    // clocks make the prediction exact.
    Status admit = AdmitLive(rec.get());
    if (!admit.ok()) {
      JobOutcome out;
      out.backend = rec->outcome.backend;
      out.admit_predicted_seconds = rec->admit_predicted_seconds;
      out.admit_budget_seconds = rec->admit_budget_seconds;
      out.status = admit;
      CompleteJob(rec, JobState::kRejected, admit, out);
      return admit;
    }
  }
  JobHandle handle(rec);
  Status pushed = queue_.Push(rec);
  if (!pushed.ok()) {
    if (pushed.IsCapacityError()) {
      // The admission charge must not leak when the queue sheds the job
      // after the controller already admitted it.
      admission_->SubPending(rec->admit_pending_charge);
      Metrics().shed->Add();
      JobOutcome out;
      out.status = pushed;
      CompleteJob(rec, JobState::kShed, pushed, out);
    }
    return pushed;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Metrics().submitted->Add();
  Metrics().class_submitted[static_cast<size_t>(rec->cls)]->Add();
  Metrics().queue_depth->Set(static_cast<double>(queue_.depth()));
  return handle;
}

void Scheduler::Resume() {
  {
    std::unique_lock<std::mutex> lock(pause_mu_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void Scheduler::Cancel(const JobHandle& handle) {
  handle.Cancel();
  pool_.NotifyCancelled();
}

void Scheduler::Shutdown() {
  bool was = shutdown_.exchange(true, std::memory_order_acq_rel);
  if (was) return;
  queue_.Close();
  Resume();  // a paused dispatcher must still drain
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::unique_lock<std::mutex> lock(ready_mu_);
    dispatch_done_ = true;
  }
  ready_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  worker_pools_.clear();
}

// Rebalance rebuilds are a memcpy-speed snapshot + one scatter pass; a
// flat tuple rate is close enough for backlog accounting (the err_pct
// histograms below tell us how close).
constexpr double kRebalanceTuplesPerSecond = 250e6;

void Scheduler::FillPlacementRequest(const JobRecord& rec,
                                     PlacementInput* in) const {
  in->kind = rec.kind;
  in->cpu_threads = config_.cpu_threads_per_job;
  if (rec.kind == JobKind::kPartition) {
    const PartitionRequest& req = rec.partition.request;
    in->n_tuples = rec.partition.input->size();
    in->fanout = req.fanout;
    in->mode = req.output_mode;
    in->layout = req.layout;
    in->link = req.link;
    in->hash = req.hash;
    in->interference = req.interference;
  } else {
    in->r_tuples = rec.join.r->size();
    in->s_tuples = rec.join.s->size();
    in->fanout = rec.join.fanout;
    in->hash = rec.join.hash;
    in->mode = OutputMode::kHist;  // the hybrid path partitions HIST-mode
    in->link = LinkKind::kXeonFpga;
  }
  // EWMA-corrected cost plumbing: scale each side's static estimate by the
  // learned (backend, size-class) factor. 1.0 until learned — and always
  // 1.0 in deterministic mode, so replays see the uncorrected model.
  const size_t size_class = SizeClassOf(rec.wfq_cost);
  in->cpu_cost_scale = admission_->correction(Backend::kCpu, size_class);
  in->device_cost_scale = admission_->correction(
      rec.kind == JobKind::kPartition ? Backend::kFpga : Backend::kHybrid,
      size_class);
}

std::optional<Backend> Scheduler::ForcedBackend(const JobRecord& rec) const {
  const Backend device_backend =
      rec.kind == JobKind::kPartition ? Backend::kFpga : Backend::kHybrid;
  if (rec.opts.pinned.has_value()) {
    // A partition job can never be "hybrid" and a join never plain-"fpga":
    // normalize bad pins to the device backend of the job kind.
    return *rec.opts.pinned == Backend::kCpu ? Backend::kCpu : device_backend;
  }
  switch (config_.policy) {
    case PlacementPolicy::kAdaptive:
      return std::nullopt;
    case PlacementPolicy::kCpuOnly:
      return Backend::kCpu;
    case PlacementPolicy::kFpgaOnly:
      return device_backend;
    case PlacementPolicy::kRoundRobin:
      return rec.seq % 2 == 0 ? device_backend : Backend::kCpu;
  }
  return std::nullopt;
}

Status Scheduler::AdmitLive(JobRecord* rec) {
  // Predict the job's end-to-end latency with the same arithmetic the
  // dispatcher will use: corrected service estimate on the backend
  // placement would pick right now, plus the backlog ahead of it. The
  // pending ledger stands in for admitted-but-undispatched work that the
  // backlog clocks have not been charged with yet.
  const double pending = admission_->pending_seconds();
  const size_t workers = std::max<size_t>(1, active_workers());
  const double cpu_wait =
      (cpu_backlog_seconds() + pending) / static_cast<double>(workers);

  Backend backend = Backend::kCpu;
  double est = 0.0;
  double predicted = 0.0;
  if (rec->kind == JobKind::kRebalance) {
    const double model = static_cast<double>(rec->rebalance.cost_tuples) /
                         kRebalanceTuplesPerSecond;
    est = admission_->Correct(Backend::kCpu, rec->wfq_cost, model);
    predicted = cpu_wait + est;
  } else {
    PlacementInput in;
    FillPlacementRequest(*rec, &in);
    in.fpga_devices = pool_.num_devices();
    in.fpga_backlog_seconds = pool_.backlog_seconds();
    in.cpu_backlog_seconds = cpu_wait;
    const PlacementDecision d = DecidePlacement(in);
    backend = d.backend;
    if (auto forced = ForcedBackend(*rec)) backend = *forced;
    if (backend == Backend::kCpu) {
      est = d.est_cpu_seconds;
      predicted = cpu_wait + est;
    } else {
      est = d.est_fpga_seconds;
      predicted = in.fpga_backlog_seconds + est;
    }
  }
  rec->outcome.backend = backend;

  const AdmissionController::Verdict verdict =
      admission_->Judge(rec->cls, rec->opts.deadline_seconds, predicted);
  rec->admit_predicted_seconds = verdict.predicted_seconds;
  rec->admit_budget_seconds =
      std::isfinite(verdict.budget_seconds) ? verdict.budget_seconds : 0.0;
  if (!verdict.admit) return verdict.status;
  rec->admit_pending_charge = est;
  admission_->AddPending(est);
  return Status::OK();
}

bool Scheduler::PlaceJob(const std::shared_ptr<JobRecord>& recp) {
  JobRecord* rec = recp.get();
  // The job is leaving the queue: its admission charge graduates into the
  // real backlog clocks charged below.
  admission_->SubPending(rec->admit_pending_charge);
  const double t_arrival = config_.deterministic
                               ? rec->opts.virtual_arrival_seconds
                               : rec->submit_seconds;

  if (rec->kind == JobKind::kRebalance) {
    // Always the host CPU: the rebuild manipulates host-resident buckets;
    // there is no device kernel for it. Policy and pins are ignored, but
    // the backlog/virtual-clock charging below matches the CPU path.
    const double model = static_cast<double>(rec->rebalance.cost_tuples) /
                         kRebalanceTuplesPerSecond;
    const double est =
        admission_->Correct(Backend::kCpu, rec->wfq_cost, model);
    rec->outcome.backend = Backend::kCpu;
    rec->model_estimate_seconds = model;
    rec->placed_estimate_seconds = est;
    if (config_.deterministic) {
      const size_t w = static_cast<size_t>(
          std::min_element(virt_worker_free_.begin(),
                           virt_worker_free_.end()) -
          virt_worker_free_.begin());
      const double start = std::max(t_arrival, virt_worker_free_[w]);
      if (config_.slo.enabled) {
        const AdmissionController::Verdict verdict = admission_->Judge(
            rec->cls, rec->opts.deadline_seconds, (start - t_arrival) + est);
        rec->admit_predicted_seconds = verdict.predicted_seconds;
        rec->admit_budget_seconds = std::isfinite(verdict.budget_seconds)
                                        ? verdict.budget_seconds
                                        : 0.0;
        if (!verdict.admit) {
          JobOutcome out;
          out.backend = Backend::kCpu;
          out.admit_predicted_seconds = rec->admit_predicted_seconds;
          out.admit_budget_seconds = rec->admit_budget_seconds;
          CompleteJob(recp, JobState::kRejected, verdict.status, out);
          return false;
        }
      }
      virt_worker_free_[w] = start + est;
      rec->outcome.virtual_queue_seconds = start - t_arrival;
      rec->outcome.virtual_run_seconds = est;
    } else {
      std::unique_lock<std::mutex> lock(ready_mu_);
      cpu_backlog_seconds_ += est;
      Metrics().cpu_backlog->Set(cpu_backlog_seconds_);
    }
    Metrics().placed_cpu->Add();
    return true;
  }

  PlacementInput in;
  FillPlacementRequest(*rec, &in);
  size_t virt_worker = 0;
  size_t virt_device = 0;
  if (config_.deterministic) {
    virt_worker = static_cast<size_t>(
        std::min_element(virt_worker_free_.begin(), virt_worker_free_.end()) -
        virt_worker_free_.begin());
    // A device job queues on the least-loaded virtual device clock.
    virt_device = static_cast<size_t>(
        std::min_element(virt_device_free_.begin(), virt_device_free_.end()) -
        virt_device_free_.begin());
    in.fpga_devices = virt_device_free_.size();
    in.fpga_backlog_seconds =
        std::max(0.0, virt_device_free_[virt_device] - t_arrival);
    in.cpu_backlog_seconds =
        std::max(0.0, virt_worker_free_[virt_worker] - t_arrival);
  } else {
    pool_.SnapshotBacklogs(&backlog_scratch_);
    in.device_backlogs = backlog_scratch_.data();
    in.fpga_devices = backlog_scratch_.size();
    in.fpga_backlog_seconds = pool_.backlog_seconds();
    std::unique_lock<std::mutex> lock(ready_mu_);
    in.cpu_backlog_seconds =
        cpu_backlog_seconds_ /
        static_cast<double>(std::max<size_t>(1, active_workers()));
  }

  PlacementDecision d = DecidePlacement(in);
  const Backend device_backend =
      rec->kind == JobKind::kPartition ? Backend::kFpga : Backend::kHybrid;
  Backend backend = d.backend;
  if (auto forced = ForcedBackend(*rec)) backend = *forced;
  if (backend != Backend::kCpu) backend = device_backend;

  rec->outcome.backend = backend;
  // The estimate the backlog clocks are charged with is the corrected one
  // (the cost scales already folded it in); keep the raw static-model
  // value alongside so the EWMA learns actual/model, not its own output.
  const double scale =
      backend == Backend::kCpu ? in.cpu_cost_scale : in.device_cost_scale;
  rec->placed_estimate_seconds =
      backend == Backend::kCpu ? d.est_cpu_seconds : d.device_seconds;
  rec->model_estimate_seconds =
      scale > 0.0 ? rec->placed_estimate_seconds / scale
                  : rec->placed_estimate_seconds;

  // Charge the chosen backend's backlog (credited back at completion) and,
  // in deterministic mode, advance the virtual clocks. The virtual start
  // and service time are stamped on the outcome: they are the replay's
  // noise-free latency decomposition (JobOutcome::virtual_*_seconds).
  if (config_.deterministic) {
    // The exact virtual start the charge below would commit — which makes
    // the admission prediction exact: predicted == virtual_queue +
    // virtual_run, so an admitted job can never miss a budget its
    // prediction fit (the zero-admitted-then-missed invariant the
    // svc_admission tests assert).
    double start;
    double service;
    if (backend == Backend::kCpu) {
      start = std::max(t_arrival, virt_worker_free_[virt_worker]);
      service = d.est_cpu_seconds;
    } else {
      // Device jobs hold a worker for the whole run and their device for
      // the lease phase; the chosen device's clock gates the start.
      start = std::max({t_arrival, virt_device_free_[virt_device],
                        virt_worker_free_[virt_worker]});
      service = d.est_fpga_seconds;
    }
    if (config_.slo.enabled) {
      const AdmissionController::Verdict verdict = admission_->Judge(
          rec->cls, rec->opts.deadline_seconds, (start - t_arrival) + service);
      rec->admit_predicted_seconds = verdict.predicted_seconds;
      rec->admit_budget_seconds = std::isfinite(verdict.budget_seconds)
                                      ? verdict.budget_seconds
                                      : 0.0;
      if (!verdict.admit) {
        // Rejected: no clock was advanced, so the rest of the replay is
        // exactly what a run without this job would compute.
        JobOutcome out;
        out.backend = backend;
        out.admit_predicted_seconds = rec->admit_predicted_seconds;
        out.admit_budget_seconds = rec->admit_budget_seconds;
        CompleteJob(recp, JobState::kRejected, verdict.status, out);
        return false;
      }
    }
    if (backend == Backend::kCpu) {
      virt_worker_free_[virt_worker] = start + service;
    } else {
      virt_device_free_[virt_device] = start + d.device_seconds;
      virt_worker_free_[virt_worker] = start + service;
    }
    rec->outcome.virtual_queue_seconds = start - t_arrival;
    rec->outcome.virtual_run_seconds = service;
  } else if (backend == Backend::kCpu) {
    std::unique_lock<std::mutex> lock(ready_mu_);
    cpu_backlog_seconds_ += d.est_cpu_seconds;
    Metrics().cpu_backlog->Set(cpu_backlog_seconds_);
  } else {
    rec->charged_device = pool_.ChargeLeastLoaded(d.device_seconds);
    Metrics().fpga_backlog->Set(pool_.backlog_seconds());
  }

  auto& m = Metrics();
  switch (backend) {
    case Backend::kCpu:
      m.placed_cpu->Add();
      break;
    case Backend::kFpga:
      m.placed_fpga->Add();
      break;
    case Backend::kHybrid:
      m.placed_hybrid->Add();
      break;
  }
  if (d.tie && !rec->opts.pinned.has_value() &&
      config_.policy == PlacementPolicy::kAdaptive) {
    m.placed_ties->Add();
  }
  return true;
}

void Scheduler::DispatcherLoop() {
  NameCurrentThread(config_.name + "-disp", 0);
  {
    std::unique_lock<std::mutex> lock(pause_mu_);
    pause_cv_.wait(lock, [this] { return !paused_; });
  }
  for (;;) {
    std::shared_ptr<JobRecord> rec = queue_.Pop();
    Metrics().queue_depth->Set(static_cast<double>(queue_.depth()));
    if (rec == nullptr) break;  // closed and drained
    Metrics().class_served_cost[static_cast<size_t>(rec->cls)]->Add(
        static_cast<uint64_t>(rec->wfq_cost));
    if (!PlaceJob(rec)) continue;  // rejected by SLO admission, completed
    {
      std::unique_lock<std::mutex> lock(ready_mu_);
      ready_.push_back(std::move(rec));
    }
    // notify_all, not notify_one: with autoscaling headroom some waiters
    // are parked (index >= active_workers_) and a targeted wake that
    // lands on one of them is lost.
    ready_cv_.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(ready_mu_);
    dispatch_done_ = true;
  }
  ready_cv_.notify_all();
}

void Scheduler::WorkerLoop(size_t index) {
  NameCurrentThread(config_.name + "-wkr", index);
  {
    // Pin the job worker itself (its pool, if any, was pinned by its own
    // constructor) and publish its identity for trace attribution.
    const Topology::Pin& pin = worker_pins_[index];
    const bool pinned = PinCurrentThreadToCpu(pin.cpu);
    WorkerContext ctx;
    ctx.worker = static_cast<int>(index);
    ctx.node = pin.node;
    ctx.cpu = pinned ? pin.cpu : -1;
    ctx.pool = config_.name.c_str();
    SetCurrentWorkerContext(ctx);
  }
  for (;;) {
    std::shared_ptr<JobRecord> rec;
    {
      std::unique_lock<std::mutex> lock(ready_mu_);
      // Workers beyond the active set park here until SetActiveWorkers
      // grows it (autoscaling) — except during the shutdown drain, where
      // every worker helps empty the ready deque.
      ready_cv_.wait(lock, [this, index] {
        if (dispatch_done_) return true;
        return !ready_.empty() &&
               index < active_workers_.load(std::memory_order_acquire);
      });
      const bool parked =
          !dispatch_done_ &&
          index >= active_workers_.load(std::memory_order_acquire);
      if (ready_.empty() || parked) {
        if (dispatch_done_ && ready_.empty()) return;
        continue;
      }
      rec = std::move(ready_.front());
      ready_.pop_front();
    }
    ExecuteJob(rec, index);
  }
}

void Scheduler::ExecuteJob(const std::shared_ptr<JobRecord>& rec,
                           size_t worker) {
  auto& m = Metrics();
  const double start_seconds = NowSeconds();
  const double queue_seconds = start_seconds - rec->submit_seconds;
  m.queue_us->Record(ToMicros(queue_seconds));
  obs::Tracer& tracer = obs::Tracer::Global();
  if (tracer.enabled()) {
    // The queue phase spans two threads (client submit -> worker start),
    // so it is emitted manually rather than via the same-thread TraceSpan.
    const double end_us = tracer.NowUs();
    const double dur_us = queue_seconds * 1e6;
    tracer.CompleteEvent("svc.job.queue", "svc",
                         std::max(0.0, end_us - dur_us), dur_us,
                         obs::kHostTracePid, obs::CurrentTraceTid());
  }

  JobOutcome out;
  out.backend = rec->outcome.backend;
  out.queue_seconds = queue_seconds;
  out.virtual_queue_seconds = rec->outcome.virtual_queue_seconds;
  out.virtual_run_seconds = rec->outcome.virtual_run_seconds;
  out.admit_predicted_seconds = rec->admit_predicted_seconds;
  out.admit_budget_seconds = rec->admit_budget_seconds;

  Status status;
  if (rec->cancel.load(std::memory_order_relaxed)) {
    status = Status::Cancelled("job " + std::to_string(rec->id) +
                               " cancelled while queued");
  } else {
    obs::TraceSpan span("svc.run", "svc");
    switch (rec->kind) {
      case JobKind::kPartition:
        status = RunPartitionJob(rec.get(), worker, &out);
        break;
      case JobKind::kJoin:
        status = RunJoinJob(rec.get(), worker, &out);
        break;
      case JobKind::kRebalance:
        status = RunRebalanceJob(rec.get(), &out);
        break;
    }
  }
  out.run_seconds = NowSeconds() - start_seconds;
  m.run_us->Record(ToMicros(out.run_seconds));
  m.total_us->Record(ToMicros(out.queue_seconds + out.run_seconds));
  if (status.ok()) {
    // Feedback for the placement model: the svc.place.err_pct histograms
    // (error of the charged estimate) and, in live mode, the EWMA
    // correction the next admission decisions use.
    admission_->ObserveRun(out.backend, rec->wfq_cost,
                           rec->model_estimate_seconds,
                           rec->placed_estimate_seconds, out.run_seconds,
                           /*learn=*/!config_.deterministic);
  }

  // Credit the backlog charged at placement.
  if (!config_.deterministic) {
    if (out.backend == Backend::kCpu) {
      std::unique_lock<std::mutex> lock(ready_mu_);
      cpu_backlog_seconds_ =
          std::max(0.0, cpu_backlog_seconds_ - rec->placed_estimate_seconds);
      Metrics().cpu_backlog->Set(cpu_backlog_seconds_);
    } else {
      pool_.Credit(rec->charged_device, rec->placed_estimate_seconds);
      Metrics().fpga_backlog->Set(pool_.backlog_seconds());
    }
    if (config_.slo.enabled) slo_pressure();
  }

  JobState state = JobState::kCompleted;
  if (status.IsCancelled()) {
    state = JobState::kCancelled;
  } else if (!status.ok()) {
    state = JobState::kFailed;
  }
  CompleteJob(rec, state, std::move(status), out);
}

Status Scheduler::RunPartitionJob(JobRecord* rec, size_t worker,
                                  JobOutcome* out) {
  PartitionRequest req = rec->partition.request;
  req.cancel = &rec->cancel;
  auto& m = Metrics();

  if (out->backend == Backend::kCpu) {
    req.engine = Engine::kCpu;
    req.num_threads = config_.cpu_threads_per_job;
    req.pool = worker_pools_.empty() ? nullptr : worker_pools_[worker].get();
    cpu_busy_.fetch_add(1, std::memory_order_relaxed);
    const double t0 = NowSeconds();
    auto result = RunPartition<Tuple8>(req, *rec->partition.input);
    m.cpu_busy_us->Add(ToMicros(NowSeconds() - t0));
    cpu_busy_.fetch_sub(1, std::memory_order_relaxed);
    FPART_RETURN_NOT_OK(result.status());
    const auto& report = result.ValueOrDie();
    out->device_seconds = 0.0;
    std::vector<uint64_t> counts(report.output.num_partitions());
    for (size_t p = 0; p < counts.size(); ++p) {
      counts[p] = report.output.part(p).num_tuples;
    }
    out->checksum = HistogramChecksum(counts.data(), counts.size());
    return Status::OK();
  }

  // FPGA placement: one exclusive device lease from the pool first.
  const double wait0 = NowSeconds();
  FPART_RETURN_NOT_OK(pool_.Acquire(rec));
  if (Failpoint("svc.device.run")) {
    pool_.Release(rec);
    return Status::Internal("failpoint: forced device-run failure");
  }
  const int device = rec->device;
  const double lease0 = NowSeconds();
  m.lease_wait_us->Record(ToMicros(lease0 - wait0));

  req.engine = Engine::kFpgaSim;
  if (config_.adaptive_interference && !config_.deterministic &&
      cpu_busy_.load(std::memory_order_relaxed) > 0) {
    req.interference = Interference::kInterfered;
  }
  auto result = RunPartition<Tuple8>(req, *rec->partition.input);
  // Stamp before Release: once the lease is handed on, this thread may be
  // descheduled for a while and a late stamp would overlap the next
  // holder's window (busy_us must never exceed wall time per device).
  const double lease_end = NowSeconds();
  pool_.Release(rec);
  const double lease_seconds = lease_end - lease0;
  m.fpga_busy_us->Add(ToMicros(lease_seconds));
  pool_.RecordBusy(device, lease_seconds);
  FPART_RETURN_NOT_OK(result.status());
  const auto& report = result.ValueOrDie();
  out->device_seconds = report.seconds;
  std::vector<uint64_t> counts(report.output.num_partitions());
  for (size_t p = 0; p < counts.size(); ++p) {
    counts[p] = report.output.part(p).num_tuples;
  }
  out->checksum = HistogramChecksum(counts.data(), counts.size());
  return Status::OK();
}

Status Scheduler::RunRebalanceJob(JobRecord* rec, JobOutcome* out) {
  auto& m = Metrics();
  cpu_busy_.fetch_add(1, std::memory_order_relaxed);
  const double t0 = NowSeconds();
  Status status = rec->rebalance.work(&rec->cancel);
  m.cpu_busy_us->Add(ToMicros(NowSeconds() - t0));
  cpu_busy_.fetch_sub(1, std::memory_order_relaxed);
  out->device_seconds = 0.0;
  return status;
}

Status Scheduler::RunJoinJob(JobRecord* rec, size_t worker, JobOutcome* out) {
  auto& m = Metrics();
  ThreadPool* pool =
      worker_pools_.empty() ? nullptr : worker_pools_[worker].get();

  if (out->backend == Backend::kCpu) {
    CpuJoinConfig config;
    config.fanout = rec->join.fanout;
    config.hash = rec->join.hash;
    config.num_threads = config_.cpu_threads_per_job;
    config.pool = pool;
    cpu_busy_.fetch_add(1, std::memory_order_relaxed);
    const double t0 = NowSeconds();
    auto result = CpuRadixJoin(config, *rec->join.r, *rec->join.s);
    m.cpu_busy_us->Add(ToMicros(NowSeconds() - t0));
    cpu_busy_.fetch_sub(1, std::memory_order_relaxed);
    FPART_RETURN_NOT_OK(result.status());
    const JoinResult& jr = result.ValueOrDie();
    out->matches = jr.matches;
    out->checksum = jr.checksum;
    out->device_seconds = 0.0;
    return Status::OK();
  }

  // Hybrid: the lease covers only the device partitioning passes; the CPU
  // build+probe runs after Release so queued device jobs can proceed.
  FpgaPartitionerConfig fpga;
  fpga.fanout = rec->join.fanout;
  fpga.hash = rec->join.hash;
  fpga.output_mode = OutputMode::kHist;  // never overflows
  fpga.layout = LayoutMode::kRid;
  fpga.link = LinkKind::kXeonFpga;
  fpga.sim_mode = config_.sim_mode;
  fpga.sim_cache = config_.sim_cache;
  fpga.xcheck = config_.xcheck;
  fpga.cancel = &rec->cancel;
  if (config_.adaptive_interference && !config_.deterministic &&
      cpu_busy_.load(std::memory_order_relaxed) > 0) {
    fpga.interference = Interference::kInterfered;
  }

  const double wait0 = NowSeconds();
  FPART_RETURN_NOT_OK(pool_.Acquire(rec));
  if (Failpoint("svc.device.run")) {
    pool_.Release(rec);
    return Status::Internal("failpoint: forced device-run failure");
  }
  const int device_index = rec->device;
  const double lease0 = NowSeconds();
  m.lease_wait_us->Record(ToMicros(lease0 - wait0));

  auto run_device = [&]() -> Result<std::pair<FpgaRunResult<Tuple8>,
                                              FpgaRunResult<Tuple8>>> {
    FPART_ASSIGN_OR_RETURN(
        FpgaRunResult<Tuple8> pr,
        internal::HybridPartition(fpga, *rec->join.r));
    FPART_ASSIGN_OR_RETURN(
        FpgaRunResult<Tuple8> ps,
        internal::HybridPartition(fpga, *rec->join.s));
    return std::make_pair(std::move(pr), std::move(ps));
  };
  auto device = run_device();
  const double lease_end = NowSeconds();  // before Release; see partition path
  pool_.Release(rec);
  const double lease_seconds = lease_end - lease0;
  m.fpga_busy_us->Add(ToMicros(lease_seconds));
  pool_.RecordBusy(device_index, lease_seconds);
  FPART_RETURN_NOT_OK(device.status());
  auto& [pr, ps] = device.ValueOrDie();
  out->device_seconds = pr.seconds + ps.seconds;

  if (rec->cancel.load(std::memory_order_relaxed)) {
    return Status::Cancelled("job " + std::to_string(rec->id) +
                             " cancelled after device phase");
  }

  cpu_busy_.fetch_add(1, std::memory_order_relaxed);
  const double t0 = NowSeconds();
  BuildProbeStats bp = ParallelBuildProbe(
      pr.output, ps.output, config_.cpu_threads_per_job, pool,
      static_cast<const Tuple8*>(nullptr), /*prefetch_distance=*/16);
  m.cpu_busy_us->Add(ToMicros(NowSeconds() - t0));
  cpu_busy_.fetch_sub(1, std::memory_order_relaxed);

  out->matches = bp.matches;
  out->checksum = bp.checksum;
  return Status::OK();
}

void Scheduler::CompleteJob(const std::shared_ptr<JobRecord>& rec,
                            JobState state, Status status,
                            JobOutcome outcome) {
  auto& m = Metrics();
  switch (state) {
    case JobState::kCompleted:
      m.completed->Add();
      m.class_completed[static_cast<size_t>(rec->cls)]->Add();
      m.class_total_us[static_cast<size_t>(rec->cls)]->Record(
          ToMicros(outcome.queue_seconds + outcome.run_seconds));
      break;
    case JobState::kFailed:
      m.failed->Add();
      break;
    case JobState::kCancelled:
      m.cancelled->Add();
      break;
    default:
      break;  // kShed / kRejected counted at admission
  }
  outcome.state = state;
  outcome.status = std::move(status);
  {
    std::unique_lock<std::mutex> lock(rec->mu);
    rec->outcome = std::move(outcome);
    rec->done = true;
  }
  rec->cv.notify_all();
  // After the publish: the outcome is immutable once done, so reading it
  // without the lock is safe, and a callback that blocks can no longer
  // delay handle waiters.
  if (rec->opts.on_complete) rec->opts.on_complete(rec->outcome);
}

}  // namespace fpart::svc
